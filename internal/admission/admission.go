// Package admission is the online control plane for a running platform:
// it admits, removes and readmits streams without violating the survivors'
// Eq. 2 (τ̂s) and Eq. 4 (γ̂s) bounds.
//
// The paper sizes block sizes ηs once, offline, with Algorithm 1 for a
// fixed stream set. A service under live traffic changes the set while
// blocks are flowing, so every request here runs the same analysis
// incrementally — an exact ILP re-solve under a node budget with a
// warm-started Kleene fixed point as fallback — and, only when the new
// configuration is provably feasible, applies it as a staged mode
// transition:
//
//  1. drain: arbitration pauses at the next block boundary
//     (gateway.RequestPause), so the pipeline is provably idle;
//  2. reconfigure: stream slots are reprogrammed over the configuration
//     bus in one validated transaction (gateway.ApplySlots), optionally
//     attaching a brand-new stream to a reserved ring slot
//     (mpsoc.AttachStream);
//  3. resume: arbitration restarts under the new ηs.
//
// The transition cost is itself bounded — the drain waits at most one
// in-flight block turnaround max τ̂s plus the bus transaction — and both
// the bound and the measured cost are recorded in the decision's Verdict.
// On a checkpointing chain (Config.Checkpoint = K) that in-flight block
// additionally pays the interior quiesce/save overhead, so the guard uses
// the adjusted Eq. 2 term τ̂s(K) = Rs + (ηs + 2·⌈ηs/K⌉)·c0 +
// (⌈ηs/K⌉−1)·Csave (core.TauHatCheckpointed) — leaving Checkpoint zero on
// such a chain would under-estimate the drain bound.
//
// Readmission of a quarantined stream is probational: the stream re-enters
// arbitration with a canary block; one clean completion clears probation,
// one stall re-quarantines immediately (no retry budget) and the
// controller rolls the survivors back to their previous configuration.
//
// Every decision lands in an append-only event log with deterministic
// rendering, so a scripted campaign (cmd/accelshare admit) is
// byte-identical across runs.
package admission

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/ilp"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
	"accelshare/internal/solve"
)

// Reason is a machine-readable verdict category.
type Reason string

// Verdict reasons.
const (
	// ReasonAdmitted marks an accepted request.
	ReasonAdmitted Reason = "admitted"
	// ReasonInfeasible: Algorithm 1 has no solution (utilisation ≥ 1 or the
	// ILP is infeasible).
	ReasonInfeasible Reason = "infeasible"
	// ReasonBufferBound: the new configuration is feasible in time but a
	// stream's C-FIFO, fixed at build time, is smaller than the buffer
	// bound the new ηs requires.
	ReasonBufferBound Reason = "buffer-bound"
	// ReasonSolverBudget: neither the budgeted ILP nor the fixed-point
	// fallback finished within its budget. The request may well be
	// feasible; the control plane refused to stall proving it.
	ReasonSolverBudget Reason = "solver-budget"
	// ReasonNoSlot: no reserved ring slot is left for a new stream.
	ReasonNoSlot Reason = "no-reserved-slot"
	// ReasonUnknownStream: the named stream is not under control.
	ReasonUnknownStream Reason = "unknown-stream"
	// ReasonNotQuarantined: readmission of a stream that is not quarantined.
	ReasonNotQuarantined Reason = "not-quarantined"
	// ReasonBusy: another mode transition is still in flight.
	ReasonBusy Reason = "busy"
	// ReasonSuperseded: the stream set changed while the transition was
	// draining (a fault quarantine landed mid-drain), so the decision's
	// solved blocks and slot map are stale. The transition aborts before
	// touching the platform; re-issue the request against the new model.
	ReasonSuperseded Reason = "superseded"
	// ReasonBadRequest: malformed request parameters.
	ReasonBadRequest Reason = "bad-request"
)

// BlockAssignment is one stream's ηs in a verdict (a slice, not a map, so
// rendering order is deterministic).
type BlockAssignment struct {
	Name  string
	Block int64
}

// Verdict is the outcome of one admission request.
type Verdict struct {
	Accepted bool
	Reason   Reason
	// Detail names the violated constraint or failed step for rejections.
	Detail string
	// Blocks is the applied assignment (accepted requests only).
	Blocks []BlockAssignment
	// FixedPoint is true when the warm-started exact fixed point produced
	// the assignment (the budgeted ILP gave up or granularity constraints
	// ruled it out); SolveRounds is the iteration count then.
	FixedPoint  bool
	SolveRounds int
	// SolverPath records which solve.Solver decision procedure produced
	// the assignment (solve.PathILP, PathWarm or PathFloat). FixedPoint is
	// its legacy projection: true exactly for PathWarm.
	SolverPath solve.Path
	// BoundCycles bounds the transition: max τ̂s over the outgoing
	// configuration (the drain can wait for one in-flight block, retries
	// included in the Rs + (η+2)c0 envelope) plus the configuration-bus
	// transaction. PauseWait and BusCycles are the measured parts;
	// PauseWait + BusCycles ≤ BoundCycles on every accepted request.
	BoundCycles uint64
	PauseWait   sim.Time
	BusCycles   uint64
}

// EventKind tags one event-log entry.
type EventKind string

// Event kinds.
const (
	EvAdd        EventKind = "add"
	EvRemove     EventKind = "remove"
	EvReadmit    EventKind = "readmit"
	EvQuarantine EventKind = "quarantine"
	EvCanaryPass EventKind = "canary-pass"
	EvCanaryFail EventKind = "canary-fail"
	EvRollback   EventKind = "rollback"
	// EvRollbackFail records a canary rollback the controller could not
	// apply. The survivors keep the readmission assignment, which was
	// proved feasible for the larger set and so still holds for them.
	EvRollbackFail EventKind = "rollback-failed"
	// EvRetarget records the controller re-attaching to the standby chain
	// after a failover migrated its streams there.
	EvRetarget EventKind = "retarget"
	// EvMigrate records the adoption of a stream evacuated from another
	// chain (AdmitMigrated): an addition that imports exported gateway state
	// instead of attaching a fresh stream.
	EvMigrate EventKind = "migrate"
)

// Event is one event-log entry. Request kinds carry the Verdict; platform
// notifications (quarantine, canary outcomes) carry only the stream.
type Event struct {
	At      sim.Time
	Kind    EventKind
	Stream  string
	Verdict *Verdict
}

// AddRequest asks to admit a new stream.
type AddRequest struct {
	// Spec describes the platform-level stream; Spec.Block is ignored (the
	// controller computes ηs) and Spec.StartSuspended is forced (the new
	// slot activates atomically with the survivors' new sizes).
	Spec mpsoc.StreamSpec
	// Rate is the throughput constraint μs in samples per second.
	Rate *big.Rat
}

// Config parameterises a Controller.
type Config struct {
	// Chain selects the controlled chain of the MultiSystem.
	Chain int
	// Model is the temporal model of the streams currently admitted, in
	// gateway-slot order; its Block fields must match the running
	// configuration. The controller owns the model from here on.
	Model *core.System
	// Decimations holds each admitted stream's decimation factor (block
	// granularity); nil means all 1.
	Decimations []int64
	// PerSlotCost is the configuration-bus cost per reprogrammed slot.
	PerSlotCost sim.Time
	// ILPNodes bounds the exact re-solve's branch-and-bound tree
	// (0 = solver default); WarmRounds bounds the fixed-point fallback
	// (0 = 10k).
	ILPNodes int
	// WarmRounds bounds the warm-started fixed-point iteration.
	WarmRounds int
	// Solver is the Algorithm 1 decision procedure (nil = the production
	// stack solve.Default(ILPNodes, WarmRounds): warm-start layer over an
	// exact/fast tier split, every fast-path plan exactly re-verified).
	// The controller passes its committed assignment as Problem.Prev on
	// every re-solve, so warm-start soundness (additions reuse, removals
	// restart cold) is the solver stack's responsibility.
	Solver solve.Solver
	// Engines builds the per-accelerator engine set for a stream admitted
	// from a script (Play); direct AddStream callers supply engines in the
	// request spec instead.
	Engines func(name string) []accel.Engine
	// Checkpoint and CheckpointCost mirror the controlled chain's
	// gateway.Recovery.Checkpoint / CheckpointCost. When Checkpoint > 0 the
	// re-solve guard's transition envelope uses the adjusted Eq. 2 term
	// τ̂s(K) (core.TauHatCheckpointed): a pause can still only wait for one
	// in-flight block, but that block now pays its interior checkpoint
	// quiesces and snapshot transfers — the residue a retry replays shrinks
	// to K, while the clean-block envelope the guard charges grows by the
	// checkpoint overhead. Leaving these zero on a checkpointed chain makes
	// the guard optimistic: a transition overlapping a checkpoint could
	// measure above its bound.
	Checkpoint     int64
	CheckpointCost sim.Time
}

// Controller is the admission control plane for one chain.
type Controller struct {
	ms     *mpsoc.MultiSystem
	ci     int
	cfg    Config
	solver solve.Solver

	model *core.System
	// gwSlot[i] is the gateway slot of model stream i: the gateway's slot
	// table only grows, while the model tracks the live set.
	gwSlot []int
	decim  []int64

	// parked holds removed and quarantined streams eligible for Readmit.
	parked map[string]*parkedStream

	// pendingCanary is the in-flight readmission probe, if any.
	pendingCanary *canaryProbe

	// gen counts model mutations (transition commits, quarantines, canary
	// shrinkage). A transition snapshots gen at decision time; the platform
	// can quarantine a stream while the pause is still draining, so the
	// pause callback compares gen against its snapshot and aborts its
	// stale plan instead of applying it over the mutated model.
	gen uint64

	busy   bool
	events []Event
}

type parkedStream struct {
	slot        int
	rate        *big.Rat
	reconfig    uint64
	decimation  int64
	quarantined bool
}

type canaryProbe struct {
	name string
	slot int
	// prev is the survivors' assignment before the readmission, for the
	// rollback transition after a failed canary.
	prev []BlockAssignment
}

// New attaches a controller to one chain of a running platform. The model
// must list the chain's current streams in slot order with their running
// block sizes.
func New(ms *mpsoc.MultiSystem, cfg Config) (*Controller, error) {
	if cfg.Chain < 0 || cfg.Chain >= len(ms.Chains) {
		return nil, fmt.Errorf("admission: chain %d out of range", cfg.Chain)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("admission: nil model")
	}
	ch := ms.Chains[cfg.Chain]
	if len(cfg.Model.Streams) != len(ch.Strs) {
		return nil, fmt.Errorf("admission: model has %d streams, chain has %d",
			len(cfg.Model.Streams), len(ch.Strs))
	}
	decim := cfg.Decimations
	if decim == nil {
		decim = make([]int64, len(ch.Strs))
		for i := range decim {
			decim[i] = 1
		}
	}
	if len(decim) != len(ch.Strs) {
		return nil, fmt.Errorf("admission: %d decimations for %d streams", len(decim), len(ch.Strs))
	}
	for i := range cfg.Model.Streams {
		if cfg.Model.Streams[i].Block != ch.Strs[i].GW.Block {
			return nil, fmt.Errorf("admission: model stream %q block %d != running %d",
				cfg.Model.Streams[i].Name, cfg.Model.Streams[i].Block, ch.Strs[i].GW.Block)
		}
	}
	solver := cfg.Solver
	if solver == nil {
		solver = solve.Default(cfg.ILPNodes, cfg.WarmRounds)
	}
	c := &Controller{
		ms: ms, ci: cfg.Chain, cfg: cfg, solver: solver,
		model:  cfg.Model,
		decim:  append([]int64(nil), decim...),
		parked: map[string]*parkedStream{},
	}
	for i := range cfg.Model.Streams {
		c.gwSlot = append(c.gwSlot, i)
	}
	ch.Pair.SetQuarantineObserver(c.onQuarantine)
	ch.Pair.SetCanaryHook(c.onCanary)
	return c, nil
}

// Events returns the decision log (append-only; do not mutate).
func (c *Controller) Events() []Event { return c.events }

// Model returns the controller's live temporal model (read-only).
func (c *Controller) Model() *core.System { return c.model }

// Busy reports whether a staged transition or canary probe is in flight:
// the rebalancer skips a tick rather than queue moves behind a drain whose
// outcome may invalidate the plan.
func (c *Controller) Busy() bool { return c.busy || c.pendingCanary != nil }

// Utilization returns the live model's exact utilisation Σ μs·ρ (a defensive
// copy: callers compare and aggregate fleet-wide, the model keeps its own).
func (c *Controller) Utilization() *big.Rat {
	return new(big.Rat).Set(c.model.Utilization())
}

// UtilizationSnapshot is one controller's load picture at an instant — the
// admission half of the fleet telemetry the rebalancer aggregates (buffer
// occupancy comes from cfifo.BufferStats, queue depth from the cluster
// registry).
type UtilizationSnapshot struct {
	// Utilization is Σ μs·ρ over the live streams, exact.
	Utilization *big.Rat
	// Streams counts the live (model) streams; Parked counts removed or
	// quarantined streams whose slot is still recoverable via Readmit.
	Streams, Parked int
	// Busy mirrors Busy(): the snapshot was taken mid-transition, so the
	// model may be about to change.
	Busy bool
}

// Snapshot captures the controller's current load (see UtilizationSnapshot).
func (c *Controller) Snapshot() UtilizationSnapshot {
	return UtilizationSnapshot{
		Utilization: c.Utilization(),
		Streams:     len(c.model.Streams),
		Parked:      len(c.parked),
		Busy:        c.Busy(),
	}
}

// ForgetParked drops a parked stream from the controller's books and returns
// its gateway slot: the rebalancer's hand-off primitive. RemoveStream parks
// the victim so its name and slot stay recoverable via Readmit — but a
// rebalanced stream is not coming back: it is released from the gateway
// (tombstoned slot) and re-admitted on another chain, and a stale parked
// entry would wedge a later failover's Retarget (every parked name must
// exist on the standby). Returns false when no such parked stream exists.
func (c *Controller) ForgetParked(name string) (int, bool) {
	p := c.parked[name]
	if p == nil {
		return 0, false
	}
	delete(c.parked, name)
	return p.slot, true
}

func (c *Controller) chain() *mpsoc.Chain { return c.ms.Chains[c.ci] }

func (c *Controller) now() sim.Time { return c.ms.K.Now() }

func (c *Controller) record(kind EventKind, stream string, v *Verdict) {
	c.events = append(c.events, Event{At: c.now(), Kind: kind, Stream: stream, Verdict: v})
}

func (c *Controller) reject(kind EventKind, stream string, reason Reason, detail string, done func(Verdict)) {
	v := Verdict{Accepted: false, Reason: reason, Detail: detail}
	c.record(kind, stream, &v)
	if done != nil {
		done(v)
	}
}

// modelIndex returns the model index of the named live stream, or -1.
func (c *Controller) modelIndex(name string) int {
	for i := range c.model.Streams {
		if c.model.Streams[i].Name == name {
			return i
		}
	}
	return -1
}

// assignment renders the model-ordered blocks as a verdict assignment.
func assignment(model *core.System, blocks []int64) []BlockAssignment {
	out := make([]BlockAssignment, len(blocks))
	for i := range blocks {
		out[i] = BlockAssignment{Name: model.Streams[i].Name, Block: blocks[i]}
	}
	return out
}

// solve runs the incremental Algorithm 1 over the candidate model through
// the configured solve.Solver. The previously committed assignment rides
// along as Problem.Prev; the solver stack's warm-start layer decides
// whether it is a sound seed (the candidate only adds streams) or whether
// the iteration must restart cold (a committed stream is gone, so the
// least fixed point shrank). Rejections keep their legacy error identities:
// core.ErrInfeasible, core.ErrSolverBudget and ilp.ErrBranchBudget all
// surface unchanged through the interface.
func (c *Controller) solve(model *core.System, granularity []int64) (*solve.Result, error) {
	prev := make([]solve.Assignment, len(c.model.Streams))
	for i := range c.model.Streams {
		prev[i] = solve.Assignment{Name: c.model.Streams[i].Name, Block: c.model.Streams[i].Block}
	}
	return c.solver.Solve(&solve.Problem{Model: model, Granularity: granularity, Prev: prev})
}

// verdictSolver fills a verdict's solver-provenance fields from a result.
func verdictSolver(v *Verdict, res *solve.Result) {
	v.SolverPath = res.Path
	v.FixedPoint = res.Path == solve.PathWarm
	v.SolveRounds = res.Rounds
}

// checkBuffers verifies every candidate stream's C-FIFOs against the
// bounds its new ηs implies: the input FIFO must hold one claimed block
// plus a worst-case service interval of arrivals (InputBufferBound), the
// output FIFO one output block in flight plus one draining
// (OutputBufferBound). caps[i] is the (in, out) capacity pair.
func checkBuffers(model *core.System, decim []int64, caps [][2]int) (string, error) {
	for i := range model.Streams {
		inB, err := model.InputBufferBound(i)
		if err != nil {
			return "", err
		}
		if int64(caps[i][0]) < inB {
			return fmt.Sprintf("stream %q input FIFO %d < bound %d",
				model.Streams[i].Name, caps[i][0], inB), nil
		}
		outB, err := model.OutputBufferBound(i, decim[i])
		if err != nil {
			return "", err
		}
		if int64(caps[i][1]) < outB {
			return fmt.Sprintf("stream %q output FIFO %d < bound %d",
				model.Streams[i].Name, caps[i][1], outB), nil
		}
	}
	return "", nil
}

// transitionBound is the drain-plus-bus envelope for one transition over
// the OUTGOING configuration: the pause can wait for one in-flight block
// of the slowest stream (τ̂s covers its reconfiguration, streaming and
// flush — the checkpoint-adjusted τ̂s(K) when the chain checkpoints, since
// that block also pays its interior quiesces), then the bus transaction
// reprograms `slots` slots.
func (c *Controller) transitionBound(slots int) uint64 {
	var maxTau uint64
	for i := range c.model.Streams {
		if t, err := c.model.TauHatCheckpointed(i, c.cfg.Checkpoint, uint64(c.cfg.CheckpointCost)); err == nil && t > maxTau {
			maxTau = t
		}
	}
	return maxTau + uint64(c.cfg.PerSlotCost)*uint64(slots)
}

// rejectReason maps a solver error to a verdict reason.
func rejectReason(err error) (Reason, string) {
	switch {
	case errors.Is(err, core.ErrInfeasible):
		return ReasonInfeasible, err.Error()
	case errors.Is(err, core.ErrSolverBudget), errors.Is(err, ilp.ErrBranchBudget):
		return ReasonSolverBudget, err.Error()
	default:
		return ReasonBadRequest, err.Error()
	}
}

// AddStream requests admission of a new stream. The decision is made
// immediately; when accepted, the staged transition (drain, attach +
// reconfigure, resume) runs asynchronously and done fires with the final
// verdict once the platform is streaming under the new configuration.
// done fires immediately on rejection.
func (c *Controller) AddStream(req AddRequest, done func(Verdict)) {
	name := req.Spec.Name
	if c.busy {
		c.reject(EvAdd, name, ReasonBusy, "another transition is in flight", done)
		return
	}
	if c.pendingCanary != nil {
		// A canary outcome may roll the model back to the assignment it
		// captured at readmission time; admitting now would invalidate it.
		c.reject(EvAdd, name, ReasonBusy, "a canary probe is in flight", done)
		return
	}
	if req.Rate == nil || req.Rate.Sign() <= 0 {
		c.reject(EvAdd, name, ReasonBadRequest, "missing or non-positive rate", done)
		return
	}
	if c.modelIndex(name) >= 0 || c.parked[name] != nil {
		c.reject(EvAdd, name, ReasonBadRequest, "stream name already in use", done)
		return
	}
	if c.chain().ReservedSlots() == 0 {
		c.reject(EvAdd, name, ReasonNoSlot, "all reserved ring slots consumed", done)
		return
	}
	decimation := req.Spec.Decimation
	if decimation < 1 {
		decimation = 1
	}

	// Candidate model: the live set plus the applicant.
	cand := c.model.Clone()
	cand.Streams = append(cand.Streams, core.Stream{
		Name:     name,
		Rate:     new(big.Rat).Set(req.Rate),
		Reconfig: uint64(req.Spec.Reconfig),
	})
	granularity := append(append([]int64(nil), c.decim...), decimation)
	// Adding a stream grows Algorithm 1's operator pointwise, so the
	// running assignment (passed as Problem.Prev by solve) is ≤ the new
	// least fixed point: the solver stack warm-starts from it.
	res, err := c.solve(cand, granularity)
	if err != nil {
		reason, detail := rejectReason(err)
		c.reject(EvAdd, name, reason, detail, done)
		return
	}
	for i, b := range res.Blocks {
		cand.Streams[i].Block = b
	}
	caps := c.liveCaps()
	caps = append(caps, [2]int{req.Spec.InCapacity, req.Spec.OutCapacity})
	if detail, err := checkBuffers(cand, granularity, caps); err != nil {
		c.reject(EvAdd, name, ReasonBadRequest, err.Error(), done)
		return
	} else if detail != "" {
		c.reject(EvAdd, name, ReasonBufferBound, detail, done)
		return
	}

	v := Verdict{
		Accepted:    true,
		Reason:      ReasonAdmitted,
		Blocks:      assignment(cand, res.Blocks),
		BoundCycles: c.transitionBound(len(cand.Streams)),
	}
	verdictSolver(&v, res)
	spec := req.Spec
	spec.Block = res.Blocks[len(res.Blocks)-1]
	spec.Decimation = decimation
	spec.StartSuspended = true

	c.busy = true
	gen := c.gen
	requested := c.now()
	pair := c.chain().Pair
	err = pair.RequestPause(func() {
		if c.gen != gen {
			// A quarantine landed during the drain: cand, the solved
			// blocks and the slot map are stale. Abort untouched.
			pair.Resume()
			c.busy = false
			c.reject(EvAdd, name, ReasonSuperseded, "stream set changed during drain", done)
			return
		}
		v.PauseWait = c.now() - requested
		st, err := c.ms.AttachStream(c.ci, spec)
		if err != nil {
			pair.Resume()
			c.busy = false
			c.reject(EvAdd, name, ReasonBadRequest, err.Error(), done)
			return
		}
		_ = st
		newSlot := len(c.chain().Strs) - 1
		updates := c.slotUpdates(cand, res.Blocks[:len(res.Blocks)-1])
		updates = append(updates, gateway.SlotUpdate{Stream: newSlot, Activate: true})
		v.BusCycles = uint64(c.cfg.PerSlotCost) * uint64(len(updates))
		err = pair.ApplySlots(updates, c.cfg.PerSlotCost, func() {
			pair.Resume()
			// Commit the model only now: the platform runs the new ηs.
			c.model = cand
			c.decim = granularity
			c.gwSlot = append(c.gwSlot, newSlot)
			c.gen++
			c.busy = false
			c.record(EvAdd, name, &v)
			if done != nil {
				done(v)
			}
		})
		if err != nil {
			// AttachStream already consumed the reserved ring slot and
			// started the source; don't leak a producing orphan behind the
			// rejection. The slot stays suspended (StartSuspended is
			// forced), the source stops, and the stream is parked so the
			// name and the consumed slot remain recoverable via Readmit.
			c.chain().Strs[newSlot].StopSource()
			c.parked[name] = &parkedStream{
				slot:       newSlot,
				rate:       new(big.Rat).Set(req.Rate),
				reconfig:   uint64(req.Spec.Reconfig),
				decimation: decimation,
			}
			pair.Resume()
			c.busy = false
			c.reject(EvAdd, name, ReasonBadRequest, err.Error()+"; stream parked, recover via readmit", done)
		}
	})
	if err != nil {
		c.busy = false
		c.reject(EvAdd, name, ReasonBusy, err.Error(), done)
	}
}

// liveCaps collects the (in, out) FIFO capacities of the live streams in
// model order.
func (c *Controller) liveCaps() [][2]int {
	ch := c.chain()
	caps := make([][2]int, len(c.model.Streams))
	for i, slot := range c.gwSlot {
		caps[i] = [2]int{ch.Strs[slot].In.Capacity(), ch.Strs[slot].Out.Capacity()}
	}
	return caps
}

// slotUpdates builds the SetBlock/SetOutBlock updates that move the live
// streams (model order) to the given blocks.
func (c *Controller) slotUpdates(model *core.System, blocks []int64) []gateway.SlotUpdate {
	var ups []gateway.SlotUpdate
	for i, b := range blocks {
		ups = append(ups, gateway.SlotUpdate{
			Stream:      c.gwSlot[i],
			SetBlock:    b,
			SetOutBlock: b / c.decim[i],
		})
	}
	return ups
}

// RemoveStream retires a live stream: its slot is suspended, its source
// stopped, and the survivors' blocks re-solved from scratch (removal
// shrinks the least fixed point, so the previous assignment is no longer
// minimal — and no longer a sound warm start). The stream is parked and
// can come back via Readmit.
func (c *Controller) RemoveStream(name string, done func(Verdict)) {
	if c.busy {
		c.reject(EvRemove, name, ReasonBusy, "another transition is in flight", done)
		return
	}
	if c.pendingCanary != nil {
		// A canary outcome may roll the model back to the assignment it
		// captured at readmission time; removing now would invalidate it.
		c.reject(EvRemove, name, ReasonBusy, "a canary probe is in flight", done)
		return
	}
	idx := c.modelIndex(name)
	if idx < 0 {
		c.reject(EvRemove, name, ReasonUnknownStream, "stream is not live on this chain", done)
		return
	}
	if len(c.model.Streams) == 1 {
		c.reject(EvRemove, name, ReasonBadRequest, "cannot remove the last stream", done)
		return
	}
	slot := c.gwSlot[idx]
	cand := c.model.Clone()
	cand.Streams = append(cand.Streams[:idx], cand.Streams[idx+1:]...)
	granularity := append([]int64(nil), c.decim[:idx]...)
	granularity = append(granularity, c.decim[idx+1:]...)
	gwSlots := append([]int(nil), c.gwSlot[:idx]...)
	gwSlots = append(gwSlots, c.gwSlot[idx+1:]...)

	// The removed stream is still in Prev but absent from cand, so the
	// solver stack restarts cold — the shrunken least fixed point may lie
	// below every warm seed the old assignment could provide.
	res, err := c.solve(cand, granularity)
	if err != nil {
		reason, detail := rejectReason(err)
		c.reject(EvRemove, name, reason, detail, done)
		return
	}
	for i, b := range res.Blocks {
		cand.Streams[i].Block = b
	}
	v := Verdict{
		Accepted:    true,
		Reason:      ReasonAdmitted,
		Blocks:      assignment(cand, res.Blocks),
		BoundCycles: c.transitionBound(len(c.model.Streams)),
	}
	verdictSolver(&v, res)
	parked := &parkedStream{
		slot:       slot,
		rate:       new(big.Rat).Set(c.model.Streams[idx].Rate),
		reconfig:   c.model.Streams[idx].Reconfig,
		decimation: c.decim[idx],
	}

	c.busy = true
	gen := c.gen
	requested := c.now()
	pair := c.chain().Pair
	err = pair.RequestPause(func() {
		if c.gen != gen {
			// A quarantine landed during the drain: cand, the solved
			// blocks and the captured slot map are stale. Abort untouched.
			pair.Resume()
			c.busy = false
			c.reject(EvRemove, name, ReasonSuperseded, "stream set changed during drain", done)
			return
		}
		v.PauseWait = c.now() - requested
		prevSlots := c.gwSlot
		c.gwSlot = gwSlots // slotUpdates addresses the survivor set
		prevDecim := c.decim
		c.decim = granularity
		updates := c.slotUpdates(cand, res.Blocks)
		updates = append(updates, gateway.SlotUpdate{Stream: slot, Suspend: true})
		v.BusCycles = uint64(c.cfg.PerSlotCost) * uint64(len(updates))
		err := pair.ApplySlots(updates, c.cfg.PerSlotCost, func() {
			pair.Resume()
			c.chain().Strs[slot].StopSource()
			c.model = cand
			c.parked[name] = parked
			c.gen++
			c.busy = false
			c.record(EvRemove, name, &v)
			if done != nil {
				done(v)
			}
		})
		if err != nil {
			c.gwSlot = prevSlots
			c.decim = prevDecim
			pair.Resume()
			c.busy = false
			c.reject(EvRemove, name, ReasonBadRequest, err.Error(), done)
		}
	})
	if err != nil {
		c.busy = false
		c.reject(EvRemove, name, ReasonBusy, err.Error(), done)
	}
}

// onQuarantine is the gateway's quarantine observer: the platform removed
// the stream from arbitration on its own (fault recovery exhausted the
// retry budget), so the controller parks it and shrinks the model. The
// survivors keep their ηs — with one stream gone every γ̂ only shrinks, so
// the running assignment stays feasible without a transition.
func (c *Controller) onQuarantine(slot int) {
	for i, s := range c.gwSlot {
		if s != slot {
			continue
		}
		name := c.model.Streams[i].Name
		if c.pendingCanary != nil && c.pendingCanary.name == name {
			return // canary failure: onCanary handles the rollback
		}
		c.parked[name] = &parkedStream{
			slot:        slot,
			rate:        new(big.Rat).Set(c.model.Streams[i].Rate),
			reconfig:    c.model.Streams[i].Reconfig,
			decimation:  c.decim[i],
			quarantined: true,
		}
		c.model.Streams = append(c.model.Streams[:i], c.model.Streams[i+1:]...)
		c.decim = append(c.decim[:i], c.decim[i+1:]...)
		c.gwSlot = append(c.gwSlot[:i], c.gwSlot[i+1:]...)
		c.gen++ // invalidate any transition plan still draining
		c.record(EvQuarantine, name, nil)
		return
	}
}

// Readmit probes a parked (quarantined or removed) stream back into
// service. The re-solve treats it as a new addition (warm start valid);
// the transition unquarantines the slot with Probation set, so the
// stream's first block is a canary: one clean completion confirms the
// readmission, one stall re-quarantines it immediately and the controller
// rolls the survivors back.
func (c *Controller) Readmit(name string, done func(Verdict)) {
	if c.busy {
		c.reject(EvReadmit, name, ReasonBusy, "another transition is in flight", done)
		return
	}
	if c.pendingCanary != nil {
		c.reject(EvReadmit, name, ReasonBusy, "a canary probe is already in flight", done)
		return
	}
	p := c.parked[name]
	if p == nil {
		if c.modelIndex(name) >= 0 {
			c.reject(EvReadmit, name, ReasonNotQuarantined, "stream is live", done)
		} else {
			c.reject(EvReadmit, name, ReasonUnknownStream, "stream was never admitted", done)
		}
		return
	}

	cand := c.model.Clone()
	cand.Streams = append(cand.Streams, core.Stream{
		Name:     name,
		Rate:     new(big.Rat).Set(p.rate),
		Reconfig: p.reconfig,
	})
	granularity := append(append([]int64(nil), c.decim...), p.decimation)
	res, err := c.solve(cand, granularity)
	if err != nil {
		reason, detail := rejectReason(err)
		c.reject(EvReadmit, name, reason, detail, done)
		return
	}
	for i, b := range res.Blocks {
		cand.Streams[i].Block = b
	}
	ch := c.chain()
	caps := c.liveCaps()
	caps = append(caps, [2]int{ch.Strs[p.slot].In.Capacity(), ch.Strs[p.slot].Out.Capacity()})
	if detail, err := checkBuffers(cand, granularity, caps); err != nil {
		c.reject(EvReadmit, name, ReasonBadRequest, err.Error(), done)
		return
	} else if detail != "" {
		c.reject(EvReadmit, name, ReasonBufferBound, detail, done)
		return
	}

	v := Verdict{
		Accepted:    true,
		Reason:      ReasonAdmitted,
		Blocks:      assignment(cand, res.Blocks),
		BoundCycles: c.transitionBound(len(cand.Streams)),
	}
	verdictSolver(&v, res)
	prev := assignment(c.model, blocksOf(c.model))
	quarantined := p.quarantined

	c.busy = true
	gen := c.gen
	requested := c.now()
	pair := ch.Pair
	err = pair.RequestPause(func() {
		if c.gen != gen {
			// A quarantine landed during the drain: cand, the solved
			// blocks and the slot map are stale. Abort untouched.
			pair.Resume()
			c.busy = false
			c.reject(EvReadmit, name, ReasonSuperseded, "stream set changed during drain", done)
			return
		}
		v.PauseWait = c.now() - requested
		updates := c.slotUpdates(cand, res.Blocks[:len(res.Blocks)-1])
		if quarantined {
			updates = append(updates, gateway.SlotUpdate{Stream: p.slot, Unquarantine: true, Probation: true})
		} else {
			updates = append(updates, gateway.SlotUpdate{Stream: p.slot, Activate: true, Probation: true})
		}
		v.BusCycles = uint64(c.cfg.PerSlotCost) * uint64(len(updates))
		err := pair.ApplySlots(updates, c.cfg.PerSlotCost, func() {
			pair.Resume()
			if !quarantined {
				// A removed stream's source was stopped; restart it.
				c.ms.ResumeSource(c.ci, p.slot)
			}
			c.model = cand
			c.decim = granularity
			c.gwSlot = append(c.gwSlot, p.slot)
			c.gen++
			delete(c.parked, name)
			c.pendingCanary = &canaryProbe{name: name, slot: p.slot, prev: prev}
			c.busy = false
			c.record(EvReadmit, name, &v)
			if done != nil {
				done(v)
			}
		})
		if err != nil {
			pair.Resume()
			c.busy = false
			c.reject(EvReadmit, name, ReasonBadRequest, err.Error(), done)
		}
	})
	if err != nil {
		c.busy = false
		c.reject(EvReadmit, name, ReasonBusy, err.Error(), done)
	}
}

func blocksOf(model *core.System) []int64 {
	out := make([]int64, len(model.Streams))
	for i := range model.Streams {
		out[i] = model.Streams[i].Block
	}
	return out
}

// onCanary resolves a pending readmission probe: a clean canary confirms
// the new configuration; a stall means the gateway already re-quarantined
// the stream, and the controller parks it again and rolls the survivors
// back to their previous ηs with another staged transition.
func (c *Controller) onCanary(slot int, ok bool) {
	p := c.pendingCanary
	if p == nil || p.slot != slot {
		return
	}
	c.pendingCanary = nil
	if ok {
		c.record(EvCanaryPass, p.name, nil)
		return
	}
	c.record(EvCanaryFail, p.name, nil)
	// The gateway re-quarantined the slot; shrink the model again.
	idx := c.modelIndex(p.name)
	if idx < 0 {
		return
	}
	c.parked[p.name] = &parkedStream{
		slot:        slot,
		rate:        new(big.Rat).Set(c.model.Streams[idx].Rate),
		reconfig:    c.model.Streams[idx].Reconfig,
		decimation:  c.decim[idx],
		quarantined: true,
	}
	c.model.Streams = append(c.model.Streams[:idx], c.model.Streams[idx+1:]...)
	c.decim = append(c.decim[:idx], c.decim[idx+1:]...)
	c.gwSlot = append(c.gwSlot[:idx], c.gwSlot[idx+1:]...)
	c.gen++
	// Roll the survivors back to the assignment that held before the
	// failed readmission (it was feasible then; with the probed stream
	// gone again it is feasible now). If the rollback cannot be applied,
	// the survivors keep the readmission ηs — feasible for the larger set,
	// hence still safe, just not minimal — and the dropped rollback is
	// recorded as a rollback-failed event rather than lost silently.
	rollbackFailed := func(reason Reason, detail string) {
		c.record(EvRollbackFail, p.name, &Verdict{Accepted: false, Reason: reason, Detail: detail})
	}
	if c.busy {
		// Unreachable while requests are gated on pendingCanary, but never
		// clobber another transition's busy gate.
		rollbackFailed(ReasonBusy, "another transition is in flight")
		return
	}
	// Map prev onto the current model by name: a survivor can itself have
	// been quarantined while the canary was pending, so prev's length and
	// order need not match the model any more. Streams without a prev
	// entry keep their current (feasible-for-a-larger-set) block.
	blocks := make([]int64, len(c.model.Streams))
	for i := range c.model.Streams {
		blocks[i] = c.model.Streams[i].Block
		for _, a := range p.prev {
			if a.Name == c.model.Streams[i].Name {
				blocks[i] = a.Block
				break
			}
		}
	}
	v := Verdict{
		Accepted:    true,
		Reason:      ReasonAdmitted,
		Blocks:      assignment(c.model, blocks),
		BoundCycles: c.transitionBound(len(blocks)),
	}
	c.busy = true
	gen := c.gen
	requested := c.now()
	pair := c.chain().Pair
	err := pair.RequestPause(func() {
		if c.gen != gen {
			// Another quarantine landed during the rollback drain: blocks
			// no longer line up with the model. Abort untouched.
			pair.Resume()
			c.busy = false
			rollbackFailed(ReasonSuperseded, "stream set changed during drain")
			return
		}
		v.PauseWait = c.now() - requested
		updates := c.slotUpdates(c.model, blocks)
		v.BusCycles = uint64(c.cfg.PerSlotCost) * uint64(len(updates))
		err := pair.ApplySlots(updates, c.cfg.PerSlotCost, func() {
			pair.Resume()
			for i := range c.model.Streams {
				c.model.Streams[i].Block = blocks[i]
			}
			c.gen++
			c.busy = false
			c.record(EvRollback, p.name, &v)
		})
		if err != nil {
			pair.Resume()
			c.busy = false
			rollbackFailed(ReasonBadRequest, err.Error())
		}
	})
	if err != nil {
		c.busy = false
		rollbackFailed(ReasonBusy, err.Error())
	}
}

// Retarget re-attaches the controller to another chain after a failover
// migrated its streams there. Slots are re-mapped BY NAME against the new
// pair's table (failover preserves order, but the controller should not
// depend on that), the model's block sizes refresh from the live table (the
// failover may have re-solved them), and standbyChain — when the standby's
// engine set differs — replaces the model's chain parameters. A transition
// that was pending on the dead pair is aborted: its pause callback died
// with the pair, so the busy gate is released and the generation bump turns
// any still-scheduled completion into a no-op.
func (c *Controller) Retarget(chain int, standbyChain *core.Chain) error {
	if chain < 0 || chain >= len(c.ms.Chains) {
		return fmt.Errorf("admission: retarget chain %d out of range", chain)
	}
	if chain == c.ci {
		return fmt.Errorf("admission: already attached to chain %d", chain)
	}
	ch := c.ms.Chains[chain]
	if ch.Pair.Failed() {
		return fmt.Errorf("admission: retarget target chain %q has itself failed", ch.Spec.Name)
	}
	if c.busy && !c.chain().Pair.Failed() {
		return fmt.Errorf("admission: transition in flight on a live pair")
	}
	snaps := ch.Pair.Snapshot()
	slotByName := make(map[string]int, len(snaps))
	for i, sn := range snaps {
		slotByName[sn.Name] = i
	}
	// Validate every mapping before mutating anything.
	newSlots := make([]int, len(c.model.Streams))
	for i := range c.model.Streams {
		slot, ok := slotByName[c.model.Streams[i].Name]
		if !ok {
			return fmt.Errorf("admission: stream %q missing on chain %q", c.model.Streams[i].Name, ch.Spec.Name)
		}
		newSlots[i] = slot
	}
	// Sorted iteration: with several parked streams missing, which one the
	// error names must not depend on map order (the message reaches the
	// campaign's deterministic output).
	parkedNames := make([]string, 0, len(c.parked))
	for name := range c.parked {
		parkedNames = append(parkedNames, name)
	}
	sort.Strings(parkedNames)
	for _, name := range parkedNames {
		if _, ok := slotByName[name]; !ok {
			return fmt.Errorf("admission: parked stream %q missing on chain %q", name, ch.Spec.Name)
		}
	}
	for i := range c.model.Streams {
		c.model.Streams[i].Block = snaps[newSlots[i]].Block
	}
	for _, name := range parkedNames {
		c.parked[name].slot = slotByName[name]
	}
	if standbyChain != nil {
		c.model.Chain = *standbyChain
		c.model.Chain.AccelCosts = append([]uint64(nil), standbyChain.AccelCosts...)
	}
	c.gwSlot = newSlots
	c.ci = chain
	c.pendingCanary = nil // a probe cannot survive its pair
	c.busy = false
	c.gen++
	ch.Pair.SetQuarantineObserver(c.onQuarantine)
	ch.Pair.SetCanaryHook(c.onCanary)
	c.record(EvRetarget, ch.Spec.Name, nil)
	return nil
}
