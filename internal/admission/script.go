package admission

import (
	"bufio"
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
	"accelshare/internal/solve"
)

// OpKind is a scripted request kind.
type OpKind string

// Script operations.
const (
	OpAdd     OpKind = "add"
	OpRemove  OpKind = "remove"
	OpReadmit OpKind = "readmit"
)

// Op is one scripted admission request, fired at simulated time At.
type Op struct {
	At   sim.Time
	Kind OpKind
	Name string
	// AddStream parameters (OpAdd only).
	Rate          *big.Rat
	Reconfig      sim.Time
	Decimation    int64
	InCap, OutCap int
	SourcePeriod  sim.Time
	TotalInputs   uint64
}

// ParseScript reads an admission campaign script: one request per line,
//
//	<at> add <name> rate=<num>/<den> [reconfig=R] [decim=D] [incap=N]
//	         [outcap=N] [period=P] [inputs=N]
//	<at> remove <name>
//	<at> readmit <name>
//
// with '#' comments and blank lines ignored. Times are simulation cycles;
// rate is μs in samples per second (a plain integer is also accepted).
func ParseScript(text string) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("script line %d: want '<at> <op> <name> ...', got %q", lineNo, line)
		}
		at, err := strconv.ParseUint(fields[0], 10, 63)
		if err != nil {
			return nil, fmt.Errorf("script line %d: bad time %q", lineNo, fields[0])
		}
		op := Op{At: sim.Time(at), Kind: OpKind(fields[1]), Name: fields[2], Decimation: 1}
		switch op.Kind {
		case OpRemove, OpReadmit:
			if len(fields) > 3 {
				return nil, fmt.Errorf("script line %d: %s takes only a name", lineNo, op.Kind)
			}
		case OpAdd:
			for _, kv := range fields[3:] {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("script line %d: bad parameter %q", lineNo, kv)
				}
				switch key {
				case "rate":
					r, ok := new(big.Rat).SetString(val)
					if !ok || r.Sign() <= 0 {
						return nil, fmt.Errorf("script line %d: bad rate %q", lineNo, val)
					}
					op.Rate = r
				case "reconfig":
					n, err := strconv.ParseUint(val, 10, 63)
					if err != nil {
						return nil, fmt.Errorf("script line %d: bad reconfig %q", lineNo, val)
					}
					op.Reconfig = sim.Time(n)
				case "decim":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("script line %d: bad decim %q", lineNo, val)
					}
					op.Decimation = n
				case "incap":
					n, err := strconv.Atoi(val)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("script line %d: bad incap %q", lineNo, val)
					}
					op.InCap = n
				case "outcap":
					n, err := strconv.Atoi(val)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("script line %d: bad outcap %q", lineNo, val)
					}
					op.OutCap = n
				case "period":
					n, err := strconv.ParseUint(val, 10, 63)
					if err != nil {
						return nil, fmt.Errorf("script line %d: bad period %q", lineNo, val)
					}
					op.SourcePeriod = sim.Time(n)
				case "inputs":
					n, err := strconv.ParseUint(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("script line %d: bad inputs %q", lineNo, val)
					}
					op.TotalInputs = n
				default:
					return nil, fmt.Errorf("script line %d: unknown parameter %q", lineNo, key)
				}
			}
			if op.Rate == nil {
				return nil, fmt.Errorf("script line %d: add needs rate=", lineNo)
			}
		default:
			return nil, fmt.Errorf("script line %d: unknown op %q", lineNo, fields[1])
		}
		if n := len(ops); n > 0 && ops[n-1].At > op.At {
			return nil, fmt.Errorf("script line %d: times must be non-decreasing", lineNo)
		}
		ops = append(ops, op)
	}
	return ops, sc.Err()
}

// FormatEvent renders one event-log entry deterministically (no maps, no
// floats, no pointers), so replayed campaigns compare byte-identical.
func FormatEvent(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d %s %s", e.At, e.Kind, e.Stream)
	if v := e.Verdict; v != nil {
		if v.Accepted {
			b.WriteString(": admitted blocks[")
			for i, a := range v.Blocks {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%d", a.Name, a.Block)
			}
			solver := "ilp"
			switch {
			case v.SolverPath == solve.PathFloat:
				// Fast-path plans only exist after exact re-verification;
				// the label records both the path and that it converged.
				solver = fmt.Sprintf("float-verified/%d", v.SolveRounds)
			case v.FixedPoint:
				solver = fmt.Sprintf("fixed-point/%d", v.SolveRounds)
			}
			fmt.Fprintf(&b, "] solver=%s bound=%d pause=%d bus=%d", solver, v.BoundCycles, v.PauseWait, v.BusCycles)
		} else {
			fmt.Fprintf(&b, ": rejected (%s) %s", v.Reason, v.Detail)
		}
	}
	return b.String()
}

// FormatEvents renders the whole log, one entry per line.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(FormatEvent(e))
		b.WriteByte('\n')
	}
	return b.String()
}

// Play schedules the script's requests on the controller's kernel. Scripted
// adds build their engines with Config.Engines (Play errors without one).
// Each verdict is appended to the controller's event log as usual; the
// caller runs the kernel to the desired horizon afterwards.
func (c *Controller) Play(ops []Op) error {
	for i := range ops {
		op := ops[i]
		var fire func()
		switch op.Kind {
		case OpAdd:
			if c.cfg.Engines == nil {
				return fmt.Errorf("admission: scripted add needs Config.Engines")
			}
			fire = func() {
				c.AddStream(AddRequest{
					Spec: mpsoc.StreamSpec{
						Name:         op.Name,
						Decimation:   op.Decimation,
						Reconfig:     op.Reconfig,
						InCapacity:   op.InCap,
						OutCapacity:  op.OutCap,
						Engines:      c.cfg.Engines(op.Name),
						SourcePeriod: op.SourcePeriod,
						TotalInputs:  op.TotalInputs,
					},
					Rate: op.Rate,
				}, nil)
			}
		case OpRemove:
			fire = func() { c.RemoveStream(op.Name, nil) }
		case OpReadmit:
			fire = func() { c.Readmit(op.Name, nil) }
		default:
			return fmt.Errorf("admission: unknown scripted op %q", op.Kind)
		}
		c.ms.K.ScheduleAt(op.At, fire)
	}
	return nil
}
