package admission

// Fuzz harness for the admission campaign script parser: arbitrary input
// must produce an error or a well-formed op list — never a panic. Run
// continuously with `go test -fuzz=FuzzParseScript ./internal/admission/`;
// CI runs a short smoke budget on every push.

import (
	"strings"
	"testing"
)

func FuzzParseScript(f *testing.F) {
	for _, seed := range []string{
		"",
		"# comment only\n",
		"3000 add s5 rate=1/300\n",
		"3000 add s5 rate=1/300 reconfig=50 decim=2 incap=64 outcap=32 period=300 inputs=128\n",
		"9000 remove s2\n",
		"15000 readmit s2\n",
		"1 add a rate=5\n2 remove a\n3 readmit a\n",
		"# campaign\n3000 add s5 rate=1/300\n9000 remove s4 # trailing comment\n",
		// Malformed: each must error, not panic.
		"x add s5 rate=1/300\n",
		"5 add\n",
		"5 add s5\n",
		"5 add s5 rate=1/0\n",
		"5 add s5 rate=-1/300\n",
		"5 add s5 rate=1/300 decim=0\n",
		"5 add s5 rate=1/300 bogus=7\n",
		"5 frobnicate s5\n",
		"5 remove\n",
		"9 remove a\n3 remove b\n", // decreasing times
		"5 add s5 rate=\n",
		"\x00\x01\x02",
		strings.Repeat("7 remove s1\n", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		ops, err := ParseScript(text)
		if err != nil {
			if ops != nil {
				t.Fatal("non-nil ops returned alongside an error")
			}
			return
		}
		last := int64(-1)
		for _, op := range ops {
			if int64(op.At) < last {
				t.Fatalf("op times decrease: %d after %d", op.At, last)
			}
			last = int64(op.At)
			if op.Name == "" {
				t.Fatalf("unnamed op survived parsing: %+v", op)
			}
			if op.Kind == OpAdd && (op.Rate == nil || op.Rate.Sign() <= 0) {
				t.Fatalf("add without a positive rate survived parsing: %+v", op)
			}
		}
	})
}
