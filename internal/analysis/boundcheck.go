// The boundcheck analyzer. Eq. 2 (τ̂s) and Eq. 4 (γ̂s) bounds are only
// meaningful when (a) the caller notices that the bound was undefined — the
// core methods return an error for unset block sizes precisely so a
// campaign cannot silently compare against 0 — and (b) the arithmetic
// around the comparison preserves the bound's value: converting a signed
// measured quantity to uint64 wraps negatives into astronomically large
// cycles (turning a violated bound into a passing one), and integer
// division truncates toward the optimistic side. core itself computes the
// bounds with exact big.Rat arithmetic; this analyzer holds consumers to
// the same discipline.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// boundMethods are the (*core.System) methods whose (value, error) results
// carry a model bound. VerifyThroughput returns only an error but guards
// the same property (Eq. 5), so dropping it is flagged too.
var boundMethods = map[string]bool{
	"TauHat":             true,
	"TauHatCheckpointed": true,
	"ResumeBound":        true,
	"EpsilonHat":         true,
	"GammaHat":           true,
	"GuaranteedRate":     true,
	"VerifyThroughput":   true,
}

// NewBoundCheck builds the bound-discipline analyzer. In every package it
// reports bound-method calls whose error result is dropped (expression
// statement, go/defer, or assignment to the blank identifier). Outside the
// defining core package — whose own internals are the exact-rational
// implementation of the bounds — it additionally reports, in expressions
// involving a bound-derived value:
//
//   - integer division (/) applied to a bound-derived operand: cycle
//     arithmetic must round via core's rational ceil helpers, not truncate
//   - signed↔unsigned integer conversions inside a comparison with a
//     bound-derived value: a negative measured value converted to uint64
//     wraps and defeats the comparison
//
// Float discipline around bounds used to live here as a syntactic
// conversion rule; the floatflow analyzer subsumes it with dataflow (a
// float laundered through a local or a helper is caught too), so this
// analyzer keeps only the integer rules.
func NewBoundCheck() *Analyzer {
	a := &Analyzer{
		Name: "boundcheck",
		Doc:  "bound-function errors must be checked; bound comparisons must not wrap signs or truncate",
	}
	a.Run = func(pass *Pass) error {
		inCore := isCorePkg(pass.Pkg.Path())
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkBoundsInFunc(pass, fd, inCore)
			}
		}
		return nil
	}
	return a
}

func isCorePkg(path string) bool {
	return path == "core" || strings.HasSuffix(path, "/core")
}

// isBoundCall reports whether call invokes one of the bound methods on
// core.System.
func isBoundCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !boundMethods[fn.Name()] || fn.Pkg() == nil || !isCorePkg(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "System"
}

func checkBoundsInFunc(pass *Pass, fd *ast.FuncDecl, inCore bool) {
	// Pass 1: error discipline, and collect bound-derived locals.
	tainted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isBoundCall(pass, call) {
				pass.Reportf(call.Pos(), "result of bound function %s dropped; its error signals an undefined bound", callName(call))
			}
		case *ast.GoStmt:
			if isBoundCall(pass, n.Call) {
				pass.Reportf(n.Call.Pos(), "bound function %s started with go; its error cannot be checked", callName(n.Call))
			}
		case *ast.DeferStmt:
			if isBoundCall(pass, n.Call) {
				pass.Reportf(n.Call.Pos(), "bound function %s deferred; its error cannot be checked", callName(n.Call))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isBoundCall(pass, call) {
				return true
			}
			// The error is the last result. Blank means unchecked.
			last := n.Lhs[len(n.Lhs)-1]
			if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(call.Pos(), "error of bound function %s assigned to _; an undefined bound must not default to zero", callName(call))
			}
			// The value result (if bound to a variable) is bound-derived.
			if len(n.Lhs) == 2 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if obj := objOf(pass, id); obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})

	if inCore {
		return
	}

	derived := func(e ast.Expr) bool { return mentionsBound(pass, e, tainted) }

	// Pass 2: arithmetic discipline around bound-derived values.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.QUO:
			t := pass.Info.Types[be].Type
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				if derived(be.X) || derived(be.Y) {
					pass.Reportf(be.OpPos, "truncating integer division on a bound-derived cycle value; use exact rational or ceil arithmetic")
				}
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if !derived(be.X) && !derived(be.Y) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				reportSignWrapConversions(pass, side)
			}
		}
		return true
	})
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "call"
}

func objOf(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// mentionsBound reports whether expr contains a direct bound call or a use
// of a bound-derived local.
func mentionsBound(pass *Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBoundCall(pass, n) {
				found = true
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportSignWrapConversions flags T(x) conversions inside one side of a
// bound comparison where T and x disagree on signedness. Non-negative
// constant operands are exempt: uint64(0) cannot wrap.
func reportSignWrapConversions(pass *Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || dst.Info()&types.IsInteger == 0 {
			return true
		}
		argTV := pass.Info.Types[call.Args[0]]
		src, ok := argTV.Type.Underlying().(*types.Basic)
		if !ok || src.Info()&types.IsInteger == 0 {
			return true
		}
		if argTV.Value != nil {
			return true // constant: wrap would be a compile error or provably absent
		}
		dstUnsigned := dst.Info()&types.IsUnsigned != 0
		srcUnsigned := src.Info()&types.IsUnsigned != 0
		if dstUnsigned != srcUnsigned {
			pass.Reportf(call.Pos(),
				"signed/unsigned conversion %s(...) inside a bound comparison; a negative value wraps and defeats the bound", dst.Name())
		}
		return true
	})
}
