// The noalloc analyzer. The timing wheel's Schedule/Pop (PR 8), the event
// pool, the cfifo burst operations and the sim queue bursts are the per-
// cycle hot paths: the benchrecord gate keeps their allocs/op at zero, but
// a benchmark only samples the code path its loop drives. Functions marked
//
//	//accellint:noalloc guard=TestName
//
// promise the zero-allocation steady state statically: the analyzer rejects
// every construct that can allocate —
//
//   - &T{...}, slice/map composite literals, make, new
//   - append (growable backing array)
//   - map writes (bucket growth)
//   - closures (FuncLit) and go statements
//   - string concatenation and string<->[]byte/[]rune conversions
//   - fmt/log calls
//   - interface boxing of non-pointer, non-constant values (assignments
//     and call arguments with an interface-typed destination)
//
// Cold-start exceptions (pool growth, first-touch lazy sizing) carry an
// //accellint:alloc <reason> line directive. The guard=TestName argument is
// mandatory and names the testing.AllocsPerRun test that proves the steady
// state dynamically; TestNoallocGuardsExist cross-validates that every
// named guard exists, so the static and dynamic checks cannot drift apart.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewNoAlloc builds the zero-allocation hot-path analyzer.
func NewNoAlloc() *Analyzer {
	a := &Analyzer{
		Name: "noalloc",
		Doc:  "//accellint:noalloc functions must not contain allocating constructs; cold-start sites carry //accellint:alloc",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				d, marked := pass.DocDirective(fd.Doc, "noalloc")
				if !marked {
					continue
				}
				if DirectiveArg(d.Reason, "guard") == "" {
					pass.Reportf(fd.Pos(),
						"//accellint:noalloc on %s needs guard=TestName naming its testing.AllocsPerRun test", fd.Name.Name)
				}
				checkNoAlloc(pass, file, fd)
			}
		}
		return nil
	}
	return a
}

func checkNoAlloc(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	flag := func(n ast.Node, what string) {
		if pass.LineDirective(file, n.Pos(), "alloc") {
			return
		}
		pass.Reportf(n.Pos(), "%s in //accellint:noalloc function %s; hoist it out of the hot path or annotate the cold-start site with //accellint:alloc", what, fd.Name.Name)
	}

	// Selector expressions that are the Fun of a call are method calls, not
	// method values; collect them so the method-value check below skips them.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			callFuns[c.Fun] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !callFuns[n] {
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					flag(n, "method value allocates its receiver binding")
				}
			}
		case *ast.CompositeLit:
			switch typeUnder(pass, n).(type) {
			case *types.Slice, *types.Map:
				flag(n, "slice/map literal allocates")
				return false
			}
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				flag(lit, "&composite literal escapes to the heap")
				return false
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, n.Fun, "make"):
				flag(n, "make allocates")
			case isBuiltin(pass, n.Fun, "new"):
				flag(n, "new allocates")
			case isBuiltin(pass, n.Fun, "append"):
				flag(n, "append may grow the backing array")
			default:
				if pkg := callPkgPath(pass, n); pkg == "fmt" || pkg == "log" {
					flag(n, pkg+" call allocates")
				} else if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
					checkAllocConversion(pass, flag, n)
				} else {
					checkBoxedArgs(pass, flag, n)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := typeUnder(pass, idx.X).(*types.Map); isMap {
						flag(lhs, "map write may grow buckets")
					}
				}
				checkBoxedStore(pass, flag, lhs, n.Rhs[i])
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if b, ok := typeUnder(pass, n).(*types.Basic); ok && b.Info()&types.IsString != 0 {
					flag(n, "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			flag(n, "closure allocates")
			return false
		case *ast.GoStmt:
			flag(n, "go statement allocates a goroutine")
		}
		return true
	})
}

// checkAllocConversion flags string <-> []byte / []rune conversions, which
// copy their operand.
func checkAllocConversion(pass *Pass, flag func(ast.Node, string), call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := pass.Info.Types[call.Fun].Type
	src := pass.Info.Types[call.Args[0]].Type
	if dst == nil || src == nil {
		return
	}
	if isStringType(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isStringType(src) {
		flag(call, "string conversion copies its operand")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// checkBoxedArgs flags call arguments boxed into interface parameters:
// storing a non-pointer, non-constant concrete value in an interface
// allocates unless the value is pointer-shaped.
func checkBoxedArgs(pass *Pass, flag func(ast.Node, string), call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && boxesIntoInterface(pass, arg, pt) {
			flag(arg, "interface boxing allocates")
		}
	}
}

// checkBoxedStore flags assignments of concrete values into interface-typed
// destinations.
func checkBoxedStore(pass *Pass, flag func(ast.Node, string), lhs, rhs ast.Expr) {
	lt := pass.Info.Types[lhs].Type
	if lt == nil {
		// := defines; use the declared object's type.
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				lt = obj.Type()
			}
		}
	}
	if lt != nil && boxesIntoInterface(pass, rhs, lt) {
		flag(rhs, "interface boxing allocates")
	}
}

// boxesIntoInterface reports whether storing e into a destination of type
// dst boxes a concrete value: dst is an interface, e is non-interface,
// non-pointer-shaped and not a compile-time constant (constants are
// interned by the runtime's staticuint64s / readonly data).
func boxesIntoInterface(pass *Pass, e ast.Expr, dst types.Type) bool {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// callPkgPath returns the defining package path of a package-level function
// call, or "" when the callee is not a qualified identifier.
func callPkgPath(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	p := fn.Pkg().Path()
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		// Match by terminal element so vendored/stub fixture paths bind too.
		p = p[i+1:]
	}
	return p
}
