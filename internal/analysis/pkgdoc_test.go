package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestPkgDocFixtureGood(t *testing.T) {
	analysistest.Run(t, "testdata", "pkgdoc/good", analysis.NewPkgDoc())
}

func TestPkgDocFixtureBad(t *testing.T) {
	analysistest.Run(t, "testdata", "pkgdoc/bad", analysis.NewPkgDoc())
}
