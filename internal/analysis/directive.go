// The //accellint: directive surface. Directives are the suite's escape
// hatch and marker vocabulary: a comment of the form
//
//	//accellint:<name> <reason...>
//
// either suppresses one finding on its line (unordered, alloc, floatflow,
// ratalias) or marks a declaration for analysis (deepcopy, noalloc,
// transcript). Every directive is parsed through ParseDirective — the one
// place the syntax is defined — and every *consumed* directive is recorded
// by the driver, so cmd/accellint can report directives that suppress or
// mark nothing (stale suppressions rot: the code they excused changes and
// the excuse silently outlives it).

package analysis

import (
	"strings"
	"unicode"
)

// A Directive is one parsed //accellint: comment.
type Directive struct {
	// Name is the directive keyword (e.g. "unordered", "noalloc").
	Name string
	// Reason is the free-text justification after the keyword, trimmed.
	// Marker directives use it for structured arguments too (noalloc's
	// "guard=TestName ...").
	Reason string
}

// knownDirectives is the closed vocabulary. A misspelled directive would
// otherwise suppress nothing while looking load-bearing, so unknown names
// are themselves diagnostics (see staleDirectives).
var knownDirectives = map[string]bool{
	"unordered":  true, // determinism: map range order provably cannot matter
	"deepcopy":   true, // deepcopy: function is an export/import hand-off
	"noalloc":    true, // noalloc: function is an allocation-free hot path
	"alloc":      true, // noalloc: this one allocation site is sanctioned
	"floatflow":  true, // floatflow: this float flow is sanctioned
	"ratalias":   true, // ratalias: this Rat store/mutation is sanctioned
	"transcript": true, // floatflow: function emits a byte-deterministic transcript
}

// ParseDirective parses one comment's text (with or without the leading
// "//") into a Directive. It reports false for comments that are not
// accellint directives at all. The name is the maximal run of letters
// after "accellint:"; anything after the first space is the reason.
// "//accellint:" with no name, or a name broken by punctuation
// ("accellint:no-alloc"), parses as a directive with the shorter name —
// the stale/unknown check surfaces the mistake instead of ignoring it.
func ParseDirective(text string) (Directive, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "accellint:")
	if !ok {
		return Directive{}, false
	}
	i := 0
	for i < len(rest) {
		r := rune(rest[i])
		if r >= unicode.MaxASCII || !unicode.IsLetter(r) {
			break
		}
		i++
	}
	return Directive{
		Name:   rest[:i],
		Reason: strings.TrimSpace(rest[i:]),
	}, true
}

// DirectiveArg extracts a key=value argument from a directive reason
// ("guard=TestKernelZeroAllocSteadyState pool growth" → "TestKernel...").
// Values run to the next space. Missing keys return "".
func DirectiveArg(reason, key string) string {
	for _, field := range strings.Fields(reason) {
		if v, ok := strings.CutPrefix(field, key+"="); ok {
			return v
		}
	}
	return ""
}
