package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestRatAliasFixture(t *testing.T) {
	// Rule A (store-then-mutate, straight-line and loop-carried) and Rule B
	// (setters retaining a caller-owned Rat) against the math/big package
	// itself; fresh-allocation idioms and documented hand-offs pass. Strict
	// mode proves the two //accellint:ratalias suppressions are live.
	analysistest.RunStrict(t, "testdata", "ratalias", analysis.NewRatAlias())
}
