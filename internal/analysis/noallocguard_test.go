package analysis_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"accelshare/internal/analysis"
)

// TestNoallocGuardsExist cross-validates the static/dynamic pairing that
// //accellint:noalloc promises: every guard=TestName argument in the tree
// must name a test function defined in a _test.go file of the same package
// directory, so the AllocsPerRun guard cannot be renamed or deleted out
// from under the annotation. (The analyzer enforces that guard= is present;
// this test enforces that it is true.)
func TestNoallocGuardsExist(t *testing.T) {
	root := filepath.Join("..", "..")
	type site struct{ file, guard string }
	var sites []site
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || (path != root && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(src), "\n") {
			dir, ok := analysis.ParseDirective(strings.TrimSpace(line))
			if !ok || dir.Name != "noalloc" {
				continue
			}
			sites = append(sites, site{file: path, guard: analysis.DirectiveArg(dir.Reason, "guard")})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) == 0 {
		t.Fatal("no //accellint:noalloc annotations found in the tree; the walk is broken")
	}

	for _, s := range sites {
		if s.guard == "" {
			t.Errorf("%s: //accellint:noalloc without guard= (accellint reports this too)", s.file)
			continue
		}
		if !guardDefinedIn(t, filepath.Dir(s.file), s.guard) {
			t.Errorf("%s: guard %s is not defined in any _test.go of %s", s.file, s.guard, filepath.Dir(s.file))
		}
	}
}

func guardDefinedIn(t *testing.T, dir, guard string) bool {
	t.Helper()
	re := regexp.MustCompile(`func ` + regexp.QuoteMeta(guard) + `\(t \*testing\.T\)`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if re.Match(src) {
			return true
		}
	}
	return false
}
