// The pkgdoc analyzer: the Go port of the awk "Doc comments" CI step. The
// recovery stack's package docs double as the design reference (doc.go's
// ladder points at them), so every package must carry a package-level doc
// comment on some non-test file. Unlike the awk pass this one sees the
// parsed AST, so a detached comment block (blank line before the package
// clause) correctly does not count.

package analysis

import "go/ast"

// NewPkgDoc builds the package-doc analyzer. It reports once per package,
// at the package clause of the first (lexically sorted) file.
func NewPkgDoc() *Analyzer {
	a := &Analyzer{
		Name: "pkgdoc",
		Doc:  "every package must have a package doc comment on a non-test file",
	}
	a.Run = func(pass *Pass) error {
		var first *ast.File
		for _, f := range pass.Files {
			if f.Doc != nil {
				return nil
			}
			if first == nil {
				first = f
			}
		}
		if first != nil {
			pass.Reportf(first.Package, "package %s has no package doc comment; the package docs double as the design reference", pass.Pkg.Name())
		}
		return nil
	}
	return a
}
