package analysis_test

import (
	"strings"
	"testing"
	"unicode"

	"accelshare/internal/analysis"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		name   string
		reason string
	}{
		{"//accellint:unordered", true, "unordered", ""},
		{"//accellint:unordered keys are sorted downstream", true, "unordered", "keys are sorted downstream"},
		{"// accellint:noalloc guard=TestX", true, "noalloc", "guard=TestX"},
		{"//accellint:noalloc guard=TestX pool growth", true, "noalloc", "guard=TestX pool growth"},
		{"//accellint:", true, "", ""},                     // nameless: surfaced by the stale check
		{"//accellint:no-alloc x", true, "no", "-alloc x"}, // punctuation truncates the name
		{"//accellint:alloc2 y", true, "alloc", "2 y"},     // digits truncate too
		{"// plain comment", false, "", ""},
		{"//go:noinline", false, "", ""},
		{"//accellint", false, "", ""}, // no colon: not a directive
	}
	for _, c := range cases {
		d, ok := analysis.ParseDirective(c.text)
		if ok != c.ok || d.Name != c.name || d.Reason != c.reason {
			t.Errorf("ParseDirective(%q) = {%q %q} %v, want {%q %q} %v",
				c.text, d.Name, d.Reason, ok, c.name, c.reason, c.ok)
		}
	}
}

func TestDirectiveArg(t *testing.T) {
	if got := analysis.DirectiveArg("guard=TestKernelZeroAlloc pool growth", "guard"); got != "TestKernelZeroAlloc" {
		t.Errorf("guard arg = %q", got)
	}
	if got := analysis.DirectiveArg("pool growth", "guard"); got != "" {
		t.Errorf("missing guard arg = %q, want empty", got)
	}
	if got := analysis.DirectiveArg("xguard=No guard=Yes", "guard"); got != "Yes" {
		t.Errorf("prefixed key matched wrongly: %q", got)
	}
}

// FuzzDirectiveParse holds ParseDirective to its structural contract on
// arbitrary comment text: it never panics, a reported directive's name is
// ASCII letters only, the reason is trimmed, and parsing is insensitive to
// the "//" prefix. Wired into the CI fuzz smoke alongside the kernel and
// solver fuzzers.
func FuzzDirectiveParse(f *testing.F) {
	f.Add("//accellint:unordered keys sorted below")
	f.Add("//accellint:noalloc guard=TestX pool growth")
	f.Add("//accellint:")
	f.Add("// accellint:alloc lazy sizing")
	f.Add("//go:generate stringer")
	f.Add("//accellint:no-alloc")
	f.Add("random text")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := analysis.ParseDirective(text)
		if !ok {
			if d.Name != "" || d.Reason != "" {
				t.Fatalf("non-directive %q returned non-zero Directive {%q %q}", text, d.Name, d.Reason)
			}
			return
		}
		for _, r := range d.Name {
			if r >= unicode.MaxASCII || !unicode.IsLetter(r) {
				t.Fatalf("directive name %q from %q contains non-letter %q", d.Name, text, r)
			}
		}
		if d.Reason != strings.TrimSpace(d.Reason) {
			t.Fatalf("reason %q from %q is not trimmed", d.Reason, text)
		}
		// Reparsing without the comment prefix is stable.
		trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//"))
		d2, ok2 := analysis.ParseDirective(trimmed)
		if !ok2 || d2 != d {
			t.Fatalf("reparse of %q without // gave {%q %q} %v, want {%q %q}", text, d2.Name, d2.Reason, ok2, d.Name, d.Reason)
		}
	})
}
