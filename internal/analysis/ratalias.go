// The ratalias analyzer. All guarantees in this reproduction are exact
// because they are computed in *big.Rat — but big.Rat has pointer
// semantics and every arithmetic method mutates its receiver in place
// (and returns it, inviting chaining). The two recurring bug shapes:
//
//	scratch := new(big.Rat)
//	for _, s := range streams {
//	    scratch.Mul(s.Rate, k)
//	    out = append(out, scratch)   // every element is the SAME Rat
//	}
//
// and a setter that retains the caller's Rat in receiver state
// (s.rate = r) so later in-place mutation on either side corrupts the
// other. Both are silent: the values are right until the next Mul.
//
// Rule A (store-then-mutate) flags a *big.Rat local that is stored into a
// container (struct field, map/slice element, append, composite literal)
// and then mutated in place — including the loop-carried order where the
// mutation textually precedes the store but bites on the next iteration.
// A fresh redefinition (x = new(big.Rat)... / big.NewRat(...)) between
// store and mutation resets the alias and clears the finding.
//
// Rule B (caller retention) flags a store of a caller-derived Rat
// (parameter-tainted, tracked through the dataflow engine with big.Rat
// methods returning their receiver's taint) into receiver state. The copy
// idiom new(big.Rat).Set(arg) has a fresh receiver and passes.
//
// Deliberately mutating a field-held Rat (c.util.Add(c.util, x)) is not
// flagged: that is the owner updating its own state. Suppress sanctioned
// sharing with //accellint:ratalias <reason> on the finding's line.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ratMutators are the big.Rat methods that write through the receiver.
var ratMutators = map[string]bool{
	"Set": true, "SetInt": true, "SetInt64": true, "SetUint64": true,
	"SetFrac": true, "SetFrac64": true, "SetFloat64": true, "SetString": true,
	"Add": true, "Sub": true, "Mul": true, "Quo": true,
	"Neg": true, "Abs": true, "Inv": true,
}

// NewRatAlias builds the big.Rat aliasing analyzer.
func NewRatAlias() *Analyzer {
	a := &Analyzer{
		Name: "ratalias",
		Doc:  "*big.Rat values must not be shared into containers or receiver state while also mutated in place",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkRatStoreMutate(pass, file, fd)
				checkRatRetention(pass, file, fd)
			}
		}
		return nil
	}
	return a
}

// isRatPtr reports whether t is *math/big.Rat (or the fixture stub big.Rat).
func isRatPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Name() != "Rat" || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "math/big" || path == "big"
}

func isRatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	return t != nil && isRatPtr(t)
}

// isFreshRat reports whether e evaluates to Rat memory this function just
// created: new(big.Rat), big.NewRat(...), or a method chain rooted at one
// (new(big.Rat).Set(x) mutates fresh memory and returns it).
func isFreshRat(pass *Pass, e ast.Expr) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if isBuiltin(pass, fun, "new") {
					return true
				}
				return false
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
					p := fn.Pkg().Path()
					if (p == "math/big" || p == "big") && fn.Type().(*types.Signature).Recv() == nil {
						return true // big.NewRat and friends construct fresh
					}
				}
				// Method chain: freshness comes from the receiver.
				e = fun.X
			default:
				return false
			}
		default:
			return false
		}
	}
}

// ratEvent records one occurrence of interest for a Rat-typed local: a
// store into a container, an in-place mutation, or a fresh redefinition.
// loops is the stack of enclosing for/range statements at the occurrence,
// innermost last, so loop-carried aliasing can be detected.
type ratEvent struct {
	pos   token.Pos
	loops []token.Pos
}

func inLoop(e ratEvent, loop token.Pos) bool {
	for _, l := range e.loops {
		if l == loop {
			return true
		}
	}
	return false
}

// checkRatStoreMutate implements Rule A over one function body.
func checkRatStoreMutate(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	type events struct{ stores, mutates, fresh []ratEvent }
	byObj := map[types.Object]*events{}
	get := func(id *ast.Ident) *events {
		obj := objOf(pass, id)
		if obj == nil {
			return nil
		}
		ev := byObj[obj]
		if ev == nil {
			ev = &events{}
			byObj[obj] = ev
		}
		return ev
	}

	var loops []token.Pos
	at := func(pos token.Pos) ratEvent {
		return ratEvent{pos: pos, loops: append([]token.Pos(nil), loops...)}
	}
	// recordStore notes ident-valued Rats stored into a container via e.
	recordStore := func(e ast.Expr) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || !isRatExpr(pass, id) {
			return
		}
		if ev := get(id); ev != nil {
			ev.stores = append(ev.stores, at(id.Pos()))
		}
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, n.Pos())
				walk(n.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.RangeStmt:
				loops = append(loops, n.Pos())
				walk(n.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					rhs := n.Rhs[i]
					switch l := lhs.(type) {
					case *ast.Ident:
						// The LHS of := is in Defs, not Types — classify the
						// ident by its object's type, not the expression's.
						if obj := objOf(pass, l); obj != nil && isRatPtr(obj.Type()) && isFreshRat(pass, rhs) {
							if ev := get(l); ev != nil {
								ev.fresh = append(ev.fresh, at(l.Pos()))
							}
						}
					case *ast.SelectorExpr, *ast.IndexExpr:
						_ = l
						recordStore(rhs)
					}
					if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
						for _, arg := range call.Args[1:] {
							recordStore(arg)
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					recordStore(elt)
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !ratMutators[sel.Sel.Name] {
					return true
				}
				recv, ok := unparen(sel.X).(*ast.Ident)
				if !ok || !isRatExpr(pass, recv) {
					return true
				}
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					p := fn.Pkg().Path()
					if p == "math/big" || p == "big" {
						if ev := get(recv); ev != nil {
							ev.mutates = append(ev.mutates, at(n.Pos()))
						}
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)

	for obj, ev := range byObj {
		if len(ev.stores) == 0 || len(ev.mutates) == 0 {
			continue
		}
		reportRatAlias(pass, file, obj, ev.stores, ev.mutates, ev.fresh)
	}
}

// reportRatAlias decides whether a (stores, mutates, fresh) event set is an
// aliasing bug and reports the earliest offending site. Straight-line: a
// mutation after a store with no fresh redefinition in between. Loop: a
// store and a mutation sharing an enclosing loop with no fresh
// redefinition in that loop (the next iteration mutates the stored value
// regardless of textual order).
func reportRatAlias(pass *Pass, file *ast.File, obj types.Object, stores, mutates, fresh []ratEvent) {
	freshBetween := func(lo, hi token.Pos) bool {
		for _, f := range fresh {
			if f.pos > lo && f.pos < hi {
				return true
			}
		}
		return false
	}
	for _, s := range stores {
		for _, m := range mutates {
			if m.pos > s.pos && !freshBetween(s.pos, m.pos) {
				if !pass.LineDirective(file, m.pos, "ratalias") {
					pass.Reportf(m.pos,
						"%s is mutated in place after being stored into a container; the stored element aliases it — store new(big.Rat).Set(%s) instead", obj.Name(), obj.Name())
				}
				return
			}
			for _, loop := range s.loops {
				if !inLoop(m, loop) {
					continue
				}
				freshInLoop := false
				for _, f := range fresh {
					if inLoop(f, loop) {
						freshInLoop = true
						break
					}
				}
				if !freshInLoop {
					if !pass.LineDirective(file, s.pos, "ratalias") {
						pass.Reportf(s.pos,
							"%s is stored and mutated in the same loop; every stored element aliases one scratch Rat — allocate per iteration or store new(big.Rat).Set(%s)", obj.Name(), obj.Name())
					}
					return
				}
			}
		}
	}
}

// checkRatRetention implements Rule B: caller-derived Rats stored into
// receiver state.
func checkRatRetention(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	if fd.Recv == nil {
		return
	}
	recvObjs := map[types.Object]bool{}
	for _, f := range fd.Recv.List {
		for _, n := range f.Names {
			if obj := pass.Info.Defs[n]; obj != nil {
				recvObjs[obj] = true
			}
		}
	}
	params := map[types.Object]bool{}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			if obj := pass.Info.Defs[n]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 || len(recvObjs) == 0 {
		return
	}

	flow := NewFlow(pass, fd, FlowConfig{
		Source: func(pass *Pass, e ast.Expr) Taint {
			id, ok := e.(*ast.Ident)
			if !ok {
				return 0
			}
			if obj := pass.Info.Uses[id]; obj != nil && params[obj] {
				return TaintParam
			}
			return 0
		},
		Transfer: func(f *Flow, call *ast.CallExpr, args Taint) Taint {
			// big.Rat methods return their receiver: the result aliases the
			// receiver's memory, not the arguments'. new(big.Rat).Set(param)
			// is therefore clean — fresh receiver, fresh result.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isRatExpr(f.Pass, sel.X) {
				if fn, ok := f.Pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					p := fn.Pkg().Path()
					if p == "math/big" || p == "big" {
						return f.ExprTaint(sel.X)
					}
				}
			}
			return args
		},
	})

	rootsAtRecv := func(lhs ast.Expr) bool {
		for {
			switch l := lhs.(type) {
			case *ast.Ident:
				obj := objOf(pass, l)
				return obj != nil && recvObjs[obj]
			case *ast.SelectorExpr:
				lhs = l.X
			case *ast.IndexExpr:
				lhs = l.X
			case *ast.StarExpr:
				lhs = l.X
			case *ast.ParenExpr:
				lhs = l.X
			default:
				return false
			}
		}
	}

	check := func(stored ast.Expr) {
		if !isRatExpr(pass, stored) || isFreshRat(pass, stored) {
			return
		}
		if flow.ExprTaint(stored)&TaintParam == 0 {
			return
		}
		if !pass.LineDirective(file, stored.Pos(), "ratalias") {
			pass.Reportf(stored.Pos(),
				"receiver retains a caller-owned *big.Rat; later in-place mutation on either side corrupts the other — store new(big.Rat).Set(...) instead")
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				if !rootsAtRecv(lhs) {
					continue
				}
				rhs := unparen(as.Rhs[i])
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
					for _, arg := range call.Args[1:] {
						check(unparen(arg))
					}
					continue
				}
				check(rhs)
			}
		}
		return true
	})
}
