package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
)

// TestSuiteCleanOnRepo is the CI property in test form: the full analyzer
// suite over every package of this module reports nothing — including the
// directive check, so a suppression whose finding no longer fires, or a
// misspelled //accellint: name, fails the tree too. Any new wall-clock
// read, unsorted map range, unchecked bound error, shallow export, float
// leak into a bound, aliased Rat store or hot-path allocation added to the
// tree fails this test before it can skew a campaign.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	fset, pkgs, err := analysis.LoadTree("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	diags, err := analysis.RunOpts(fset, pkgs, analysis.Suite(), analysis.Options{CheckDirectives: true})
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
