package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"accelshare/internal/analysis"
)

// TestStaleDirectiveFixture pins the CheckDirectives pass against the
// staledir fixture: the live suppression (consulted by the determinism
// analyzer at an order-observing map range) is silent, while the dead
// suppression, the rotted cold-start exception and the misspelled name are
// each reported exactly once. Diagnostics land on the directive comment's
// own line, which // want comments cannot annotate, so this test asserts
// positions directly.
func TestStaleDirectiveFixture(t *testing.T) {
	l := analysis.NewLoader()
	if err := l.AddFixtureRoot(filepath.Join("testdata", "src")); err != nil {
		t.Fatalf("fixture root: %v", err)
	}
	pkg, err := l.Load("staledir")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	// Cover the fixture path so the determinism analyzer consults (and
	// thereby consumes) the live unordered suppression.
	coverAll := func(string) bool { return true }
	diags, err := analysis.RunOpts(l.Fset, []*analysis.Package{pkg},
		[]*analysis.Analyzer{analysis.NewDeterminism(coverAll), analysis.NewNoAlloc()},
		analysis.Options{CheckDirectives: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	wantSubstrings := []string{
		`stale //accellint:unordered directive suppresses or marks nothing`,
		`stale //accellint:alloc directive suppresses or marks nothing`,
		`unknown accellint directive "noallocs"`,
	}
	if len(diags) != len(wantSubstrings) {
		for _, d := range diags {
			t.Logf("got: %s: [%s] %s", l.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wantSubstrings))
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].Message, want)
		}
		if diags[i].Analyzer != "directive" {
			t.Errorf("diag %d analyzer = %q, want %q", i, diags[i].Analyzer, "directive")
		}
	}
}
