package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestFloatFlowFixture(t *testing.T) {
	// Verify-don't-trust at the lint layer, dataflow edition: no
	// float-derived value may reach a bound comparison, a bound field or a
	// transcript emitter without passing through solve.Verify — including
	// floats laundered through locals, conversions and branch joins that
	// the old syntactic rule missed. Strict mode additionally proves the
	// fixture's //accellint:floatflow and transcript directives are live.
	analysistest.RunStrict(t, "testdata", "floatflow", analysis.NewFloatFlow())
}

func TestFloatFlowExemptsDefiningPackage(t *testing.T) {
	// The core stub's internals implement the bounds; floatflow must stay
	// silent there just like boundcheck does.
	analysistest.Run(t, "testdata", "core", analysis.NewFloatFlow())
}
