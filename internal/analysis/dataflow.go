// The intraprocedural dataflow engine behind the taint-style analyzers
// (floatflow, ratalias). The PR-5 analyzers are syntactic: they look at one
// expression at a time, so a value laundered through a local variable or a
// helper call escapes them. This engine computes, per function, which local
// objects can carry which taint labels — forward propagation over the typed
// AST through assignments, short variable declarations, composite literals,
// call arguments/results, range statements and field/index reads — and
// answers taint queries for arbitrary expressions against that fixpoint.
//
// The analysis is deliberately flow-INSENSITIVE: instead of building a CFG
// it iterates the propagation over the whole body until nothing changes,
// which is exactly the conservative merge at every control-flow join (a
// value tainted on any path is tainted after the join, and loop-carried
// flows are closed by the fixpoint). Taint only ever grows, so the
// iteration terminates in at most |objects| × |labels| rounds.
//
// Sanitizers cut the other way: an object named in a sanitizing call (the
// solve.Verify exact re-verification) is trusted for the whole function —
// its stored taint is masked at every read. Flow-insensitivity makes this
// an over-approximation of trust in one direction and of taint in the
// other; both err toward the review-the-suppression side the suite already
// takes everywhere else.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Taint is a bitset of dataflow labels.
type Taint uint8

const (
	// TaintFloat marks values derived from float32/float64 arithmetic —
	// anything downstream of a float expression, through conversions,
	// helpers and integer rounding alike.
	TaintFloat Taint = 1 << iota
	// TaintBound marks values derived from a model bound (a core bound
	// method result or a *Bound struct field).
	TaintBound
	// TaintParam marks values that may alias memory owned by the caller
	// (parameters and everything reachable from them).
	TaintParam
)

// FlowConfig configures one taint analysis over one function body.
type FlowConfig struct {
	// Source returns the taint an expression introduces by itself,
	// independent of its operands (e.g. "any non-constant float-typed
	// expression carries TaintFloat"). May be nil.
	Source func(pass *Pass, e ast.Expr) Taint
	// Transfer maps a non-conversion call to its result taint, given the
	// union of the taints of its arguments (receiver included). Nil means
	// the conservative default: results carry the argument union.
	Transfer func(f *Flow, call *ast.CallExpr, args Taint) Taint
	// Sanitizes returns the expressions a call exactly re-verifies. The
	// plain identifiers among them are trusted for the whole function.
	Sanitizes func(pass *Pass, call *ast.CallExpr) []ast.Expr
	// FieldRead maps the container's taint to the taint a field read (x.f)
	// yields. Nil means the conservative default: the read carries the full
	// container taint. Analyzers use this to drop labels a field's own type
	// cannot embody (floatflow: an integer field of a float-carrying
	// struct).
	FieldRead func(f *Flow, sel *ast.SelectorExpr, container Taint) Taint
}

// Flow is the per-function fixpoint: object taints plus the sanitized set.
type Flow struct {
	Pass *Pass
	cfg  FlowConfig
	obj  map[types.Object]Taint
	san  map[types.Object]bool
}

// NewFlow computes the taint fixpoint over fd's body.
func NewFlow(pass *Pass, fd *ast.FuncDecl, cfg FlowConfig) *Flow {
	f := &Flow{Pass: pass, cfg: cfg, obj: map[types.Object]Taint{}, san: map[types.Object]bool{}}
	if fd.Body == nil {
		return f
	}
	// Sanitized objects first: they must never accumulate taint, so the
	// propagation below masks them from the start.
	if cfg.Sanitizes != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, e := range cfg.Sanitizes(pass, call) {
				if id, ok := unparen(e).(*ast.Ident); ok {
					if obj := objOf(pass, id); obj != nil {
						f.san[obj] = true
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = f.propagateAssign(n) || changed
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							changed = f.taintObjIdent(name, f.ExprTaint(vs.Values[i])) || changed
						}
					}
				}
			case *ast.RangeStmt:
				t := f.ExprTaint(n.X)
				if id, ok := n.Key.(*ast.Ident); ok {
					// Over a slice, array or string the key is a synthesized
					// integer position, not data drawn from the container —
					// only map keys (and channel elements) carry its taint.
					kt := t
					if rt, ok := f.Pass.Info.Types[n.X]; ok && rt.Type != nil {
						switch rt.Type.Underlying().(type) {
						case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
							kt = 0
						}
					}
					changed = f.taintObjIdent(id, kt) || changed
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					changed = f.taintObjIdent(id, t) || changed
				}
			}
			return true
		})
	}
	return f
}

// propagateAssign moves taint from each RHS into the object rooting each
// LHS. A store into a field or element taints the whole container object:
// the engine does not track per-field taint, so x.f = tainted makes every
// later read of x (and x.g) tainted — conservative, never unsound for the
// reachability questions the analyzers ask.
func (f *Flow) propagateAssign(as *ast.AssignStmt) bool {
	changed := false
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// Tuple assignment from one call/comma-ok: every LHS gets the RHS
		// expression's taint.
		t := f.ExprTaint(as.Rhs[0])
		for _, lhs := range as.Lhs {
			changed = f.taintLHS(lhs, t) || changed
		}
		return changed
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		t := f.ExprTaint(as.Rhs[i])
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Op-assign (+=, *=, ...): the old value participates.
			t |= f.ExprTaint(lhs)
		}
		changed = f.taintLHS(lhs, t) || changed
	}
	return changed
}

// taintLHS adds taint to the object rooting an assignment target.
func (f *Flow) taintLHS(lhs ast.Expr, t Taint) bool {
	if t == 0 {
		return false
	}
	for {
		switch l := lhs.(type) {
		case *ast.Ident:
			return f.taintObjIdent(l, t)
		case *ast.SelectorExpr:
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.StarExpr:
			lhs = l.X
		case *ast.ParenExpr:
			lhs = l.X
		default:
			return false
		}
	}
}

func (f *Flow) taintObjIdent(id *ast.Ident, t Taint) bool {
	if t == 0 || id.Name == "_" {
		return false
	}
	obj := objOf(f.Pass, id)
	if obj == nil || f.san[obj] {
		return false
	}
	if f.obj[obj]&t == t {
		return false
	}
	f.obj[obj] |= t
	return true
}

// ObjTaint returns the fixpoint taint of one object (masked for sanitized
// objects).
func (f *Flow) ObjTaint(obj types.Object) Taint {
	if obj == nil || f.san[obj] {
		return 0
	}
	return f.obj[obj]
}

// Sanitized reports whether obj was named in a sanitizing call.
func (f *Flow) Sanitized(obj types.Object) bool { return f.san[obj] }

// ExprTaint computes the taint an expression's value can carry under the
// current fixpoint: object taints at identifiers, union over operands,
// container taint through field/index reads, Source everywhere, Transfer
// (or the argument-union default) at calls. Constant expressions carry no
// taint — their value is fixed at compile time.
func (f *Flow) ExprTaint(e ast.Expr) Taint {
	if e == nil {
		return 0
	}
	if tv, ok := f.Pass.Info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	var src Taint
	if f.cfg.Source != nil {
		src = f.cfg.Source(f.Pass, e)
	}
	switch x := e.(type) {
	case *ast.Ident:
		return src | f.ObjTaint(objOf(f.Pass, x))
	case *ast.ParenExpr:
		return src | f.ExprTaint(x.X)
	case *ast.UnaryExpr:
		return src | f.ExprTaint(x.X)
	case *ast.StarExpr:
		return src | f.ExprTaint(x.X)
	case *ast.BinaryExpr:
		return src | f.ExprTaint(x.X) | f.ExprTaint(x.Y)
	case *ast.SelectorExpr:
		// Package-qualified identifiers root nothing; field reads carry
		// their container's taint (modulo the FieldRead hook).
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := f.Pass.Info.Uses[id].(*types.PkgName); isPkg {
				return src
			}
		}
		cont := f.ExprTaint(x.X)
		if f.cfg.FieldRead != nil {
			cont = f.cfg.FieldRead(f, x, cont)
		}
		return src | cont
	case *ast.IndexExpr:
		return src | f.ExprTaint(x.X)
	case *ast.SliceExpr:
		return src | f.ExprTaint(x.X)
	case *ast.TypeAssertExpr:
		return src | f.ExprTaint(x.X)
	case *ast.CompositeLit:
		var t Taint
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			t |= f.ExprTaint(elt)
		}
		return src | t
	case *ast.CallExpr:
		if tv, ok := f.Pass.Info.Types[x.Fun]; ok && tv.IsType() {
			// Conversion: the value flows through, possibly changing type —
			// int64(f) keeps f's float derivation.
			if len(x.Args) == 1 {
				return src | f.ExprTaint(x.Args[0])
			}
			return src
		}
		var args Taint
		for _, a := range x.Args {
			args |= f.ExprTaint(a)
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			// Method receiver participates like an argument.
			if id, ok := sel.X.(*ast.Ident); !ok || !isPkgName(f.Pass, id) {
				args |= f.ExprTaint(sel.X)
			}
		}
		if f.cfg.Transfer != nil {
			return src | f.cfg.Transfer(f, x, args)
		}
		return src | args
	case *ast.FuncLit:
		return src
	}
	return src
}

func isPkgName(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
