// The determinism analyzer. Campaign subcommands promise byte-identical
// output for identical scripts (golden files diff the whole artifact), and
// the simulator's event order is part of the model being validated — so the
// packages that feed output, traces, golden files or campaign emitters must
// not consult the wall clock, the process-global random source, or Go's
// randomized map iteration order. The 8 pre-existing ad-hoc sort.Slice call
// sites (trace rows, usage listing, remainder ordering, ...) are the
// pattern this rule generalizes: map iteration must pass through an
// explicit sort before it can influence anything observable.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismCovered is the default coverage predicate: the packages whose
// behavior reaches campaign output, golden files or recorded traces.
func DeterminismCovered(path string) bool {
	for _, p := range []string{
		"accelshare/internal/sim",
		"accelshare/internal/trace",
		"accelshare/internal/conformance",
		"accelshare/internal/gateway",
		"accelshare/internal/mpsoc",
		"accelshare/internal/admission",
		"accelshare/internal/fault",
		"accelshare/internal/cluster",
		"accelshare/internal/solve",
		"accelshare/cmd/accelshare",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// NewDeterminism builds the determinism analyzer with a coverage predicate
// over package import paths (nil means DeterminismCovered). Within covered
// packages it reports:
//
//   - calls to time.Now / time.Since / time.Until — wall-clock reads; the
//     simulator's sim.Time cycle clock is the only clock
//   - calls to math/rand (and math/rand/v2) package-level functions, which
//     draw from the process-global source; a locally seeded *rand.Rand via
//     rand.New(rand.NewSource(seed)) is fine
//   - range statements over maps, unless the loop body provably cannot
//     observe order (it only collects keys/values into slices via
//     x = append(x, ...), only writes other maps / deletes keys, or only
//     bumps integer counters), or the statement carries an
//     //accellint:unordered directive stating why order cannot matter
//
// The sorted-keys idiom (collect, sort.Strings/Ints/Slice, iterate the
// slice) therefore passes: the collection loop is order-insensitive and
// the ordered iteration ranges over a slice.
func NewDeterminism(cover func(pkgPath string) bool) *Analyzer {
	if cover == nil {
		cover = DeterminismCovered
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, global math/rand and order-observing map iteration in output-feeding packages",
	}
	a.Run = func(pass *Pass) error {
		if !cover(pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDeterminismCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, file, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandAllowed lists math/rand functions that do NOT touch the global
// source: constructors for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in a determinism-covered package; the sim cycle clock is the only clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions use the process-global source;
		// methods on *rand.Rand have an explicit, caller-seeded source.
		if fn.Type().(*types.Signature).Recv() == nil && !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global rand.%s in a determinism-covered package; use a rand.New(rand.NewSource(seed)) local to the campaign", fn.Name())
		}
	}
}

func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if mapRangeBodyOrderInsensitive(pass, rng.Body) {
		// Order-insensitive loops need no directive; checking the body first
		// means an unordered directive on such a loop stays un-consumed and
		// is reported as stale instead of silently tolerated.
		return
	}
	if pass.LineDirective(file, rng.Pos(), "unordered") {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order can reach observable output; iterate a sorted key slice or annotate //accellint:unordered with a reason")
}

// mapRangeBodyOrderInsensitive reports whether every statement of a map
// range body is one of the shapes whose net effect cannot depend on
// iteration order:
//
//	keys = append(keys, ...)   collecting into a slice to be sorted
//	m[...] = ...               writing another map (incl. op-assign)
//	delete(m, ...)             deleting keys
//	n++ / n-- / n += <int>     commutative integer aggregation
//
// Anything else — returns, conditionals, calls, float accumulation, slice
// element writes — is conservatively treated as order-observing.
func mapRangeBodyOrderInsensitive(pass *Pass, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(pass, st) {
				return false
			}
		case *ast.IncDecStmt:
			if _, ok := st.X.(*ast.Ident); !ok {
				return false
			}
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(pass *Pass, st *ast.AssignStmt) bool {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		switch lhs := st.Lhs[0].(type) {
		case *ast.Ident:
			// x = append(x, ...): pure collection, order fixed later by an
			// explicit sort before anything observes it.
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
				return false
			}
			base, ok := call.Args[0].(*ast.Ident)
			return ok && base.Name == lhs.Name
		case *ast.IndexExpr:
			// m[k] = v: map writes commute across distinct keys, and range
			// visits each key once.
			xt := pass.Info.Types[lhs.X].Type
			if xt == nil {
				return false
			}
			_, isMap := xt.Underlying().(*types.Map)
			return isMap
		}
		return false
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer aggregation commutes; float accumulation does not.
		lt := pass.Info.Types[st.Lhs[0]].Type
		if lt == nil {
			return false
		}
		b, ok := lt.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			return false
		}
		if _, ok := st.Lhs[0].(*ast.Ident); !ok {
			if idx, ok := st.Lhs[0].(*ast.IndexExpr); ok {
				xt := pass.Info.Types[idx.X].Type
				if xt == nil {
					return false
				}
				_, isMap := xt.Underlying().(*types.Map)
				return isMap
			}
			return false
		}
		return true
	}
	return false
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}
