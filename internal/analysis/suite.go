// The default analyzer suite, as run by cmd/accellint and CI.

package analysis

// Suite returns every analyzer with its production configuration: the
// determinism rule covers the output-feeding packages listed in
// DeterminismCovered, and the other analyzers apply module-wide.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(nil),
		NewBoundCheck(),
		NewDeepCopy(),
		NewPkgDoc(),
		NewFloatFlow(),
		NewRatAlias(),
		NewNoAlloc(),
	}
}
