// Package core stubs the bound-function surface of accelshare/internal/core
// for boundcheck fixtures: same method names on a System type, same
// (value, error) shape. The package-path suffix "core" is what the analyzer
// matches, so fixtures under a plain "core" import path bind to the same
// rule as the real module path.
package core

import "errors"

// System mirrors the real model type's bound surface.
type System struct {
	Blocks []int64
}

// ErrBlockUnknown mirrors the real sentinel for an unset block size.
var ErrBlockUnknown = errors.New("block size unknown")

// TauHat is the Eq. 2 single-block bound stub.
func (s *System) TauHat(i int) (uint64, error) {
	if i < 0 || i >= len(s.Blocks) || s.Blocks[i] <= 0 {
		return 0, ErrBlockUnknown
	}
	return uint64(s.Blocks[i]) * 10, nil
}

// TauHatCheckpointed is the τ̂s(K) stub.
func (s *System) TauHatCheckpointed(i int, k int64, saveCost uint64) (uint64, error) {
	tau, err := s.TauHat(i)
	if err != nil {
		return 0, err
	}
	return tau + saveCost, nil
}

// ResumeBound is the replay-bound stub.
func (s *System) ResumeBound(i int, k int64) (uint64, error) { return s.TauHat(i) }

// EpsilonHat is the Eq. 3 stub.
func (s *System) EpsilonHat(i int) (uint64, error) { return s.TauHat(i) }

// GammaHat is the Eq. 4 stub.
func (s *System) GammaHat(i int) (uint64, error) { return s.TauHat(i) }

// GuaranteedRate is the Eq. 5 stub.
func (s *System) GuaranteedRate(i int) (uint64, error) { return s.TauHat(i) }

// VerifyThroughput is the whole-system Eq. 5 check stub.
func (s *System) VerifyThroughput() error {
	if len(s.Blocks) == 0 {
		return ErrBlockUnknown
	}
	return nil
}

// half truncates a bound inside the defining package: core's own internals
// implement the bounds and are exempt from the arithmetic rules, so this
// carries no finding.
func (s *System) half(i int) (uint64, error) {
	tau, err := s.TauHat(i)
	if err != nil {
		return 0, err
	}
	return tau / 2, nil
}
