// Package boundfloat exercises the boundcheck analyzer's float rule
// against the core stub: no float value may flow into a bound comparison
// without exact re-verification. A float-path candidate truncated into an
// exact comparison (int64/uint64 of a float) and a bound hoisted onto
// floats (float64 of a bound) are findings; comparing after an exact
// re-verification step — integer values all the way down — is not.
package boundfloat

import "core"

func floatIntoComparison(s *core.System, estimate float64) (bool, error) {
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	return uint64(estimate) <= tau, nil // want `float value converted to uint64 inside a bound comparison`
}

func boundOntoFloats(s *core.System, estimate float64) (bool, error) {
	gamma, err := s.GammaHat(0)
	if err != nil {
		return false, err
	}
	return estimate <= float64(gamma), nil // want `bound-side value converted to float64 inside a bound comparison`
}

func floatBothSides(s *core.System, estimate, jitter float64) (bool, error) {
	eps, err := s.EpsilonHat(0)
	if err != nil {
		return false, err
	}
	// Both operands smuggle floats: each side is reported once.
	return uint64(estimate) <= eps+uint64(jitter), nil // want `float value converted to uint64 inside a bound comparison` `float value converted to uint64 inside a bound comparison`
}

// reverify models the sanctioned pattern: the float candidate is rounded
// up once, re-verified exactly (the stub's VerifyThroughput stands in for
// solve.Verify), and only the exact integer ever meets the bound.
func reverify(s *core.System, candidate uint64) (bool, error) {
	if err := s.VerifyThroughput(); err != nil {
		return false, err
	}
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	return candidate <= tau, nil // exact integers on both sides: fine
}

func floatMathElsewhere(estimate float64) float64 {
	return float64(int64(estimate * 2)) // no bound involved: fine
}
