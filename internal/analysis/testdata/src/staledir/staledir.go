// Package staledir exercises the CheckDirectives pass: //accellint:
// comments that no analyzer consumed are findings themselves — a
// suppression whose finding no longer fires, a cold-start exception whose
// allocation rotted away, a misspelled name. The live suppression in
// firstMatch is the control case: the determinism analyzer consults and
// consumes it, so only the three dead directives below are reported.
package staledir

// firstMatch observes map iteration order (early return), so its
// suppression is consulted and stays live.
func firstMatch(m map[string]int) (string, bool) {
	//accellint:unordered any matching key serves as a witness
	for k := range m {
		if len(k) > 3 {
			return k, true
		}
	}
	return "", false
}

// tidy carries a suppression with nothing left to suppress.
func tidy() int {
	//accellint:unordered nothing here ranges over a map
	return 1
}

// constant is a guarded hot path whose cold-start exception rotted away.
//
//accellint:noalloc guard=TestConstantZeroAlloc
func constant() int {
	//accellint:alloc the make this line once excused is long gone
	return 2
}

// typo carries a misspelled directive that suppresses nothing while
// looking load-bearing.
func typo() int {
	//accellint:noallocs misspelled marker
	return 3
}
