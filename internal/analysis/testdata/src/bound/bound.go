// Package bound exercises the boundcheck analyzer against the core stub:
// dropped results, blank-discarded errors, truncating division and
// sign-wrapping conversions are findings; checked errors and same-type
// comparisons are not.
package bound

import "core"

func dropped(s *core.System) {
	s.TauHat(0) // want `result of bound function TauHat dropped`
}

func droppedVerify(s *core.System) {
	s.VerifyThroughput() // want `result of bound function VerifyThroughput dropped`
}

func blanked(s *core.System) uint64 {
	tau, _ := s.TauHat(0) // want `error of bound function TauHat assigned to _`
	return tau
}

func deferred(s *core.System) {
	defer s.GammaHat(0) // want `bound function GammaHat deferred`
}

func checked(s *core.System) (uint64, error) {
	tau, err := s.TauHatCheckpointed(0, 4, 60)
	if err != nil {
		return 0, err
	}
	return tau, nil
}

func truncates(s *core.System, blocks uint64) (uint64, error) {
	gamma, err := s.GammaHat(0)
	if err != nil {
		return 0, err
	}
	per := gamma / blocks // want `truncating integer division`
	return per, nil
}

func wraps(s *core.System, measured int64) (bool, error) {
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	return uint64(measured) <= tau, nil // want `signed/unsigned conversion uint64`
}

func sameType(s *core.System, measured uint64) (bool, error) {
	tau, err := s.ResumeBound(0, 4)
	if err != nil {
		return false, err
	}
	return measured <= tau, nil // unsigned vs unsigned: fine
}

func unrelatedDivision(measured, n uint64) uint64 {
	return measured / n // no bound involved: fine
}
