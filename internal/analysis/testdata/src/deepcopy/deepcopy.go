// Package deepcopy exercises the deepcopy analyzer: directive-marked
// export functions must not return receiver-reachable slices/maps, and
// marked import functions must not retain parameter-reachable ones.
// Unmarked functions are never checked.
package deepcopy

type word uint64

type stream struct {
	name string
	buf  []word
	tags map[string]int
}

type pair struct {
	streams []*stream
	block   []word
}

type export struct {
	name   string
	replay []word
	tags   map[string]int
}

// Block leaks the receiver's block buffer directly.
//
//accellint:deepcopy
func (p *pair) Block() []word {
	return p.block // want `return aliases receiver-owned slice`
}

// Export leaks the buffer through a returned composite literal.
//
//accellint:deepcopy
func (p *pair) Export() export {
	return export{name: "x", replay: p.block} // want `returned composite aliases receiver-owned slice`
}

// ExportNested leaks the buffer through a nested composite literal.
//
//accellint:deepcopy
func (p *pair) ExportNested() []export {
	return []export{{name: "x", replay: p.block}} // want `returned composite aliases receiver-owned slice`
}

// ExportAll leaks per-stream state through a local that flows into the
// returned slice.
//
//accellint:deepcopy
func (p *pair) ExportAll() []export {
	out := make([]export, len(p.streams))
	for i, s := range p.streams {
		var e export
		e.name = s.name
		e.replay = s.buf // want `returned value aliases receiver-owned slice`
		e.tags = s.tags  // want `returned value aliases receiver-owned map`
		out[i] = e
	}
	return out
}

// ExportClean deep-copies everything it exports; no findings.
//
//accellint:deepcopy
func (p *pair) ExportClean() []export {
	out := make([]export, len(p.streams))
	for i, s := range p.streams {
		out[i] = export{
			name:   s.name,
			replay: append([]word(nil), s.buf...),
			tags:   cloneTags(s.tags),
		}
	}
	return out
}

// Import retains the caller's replay slice in the stream table.
//
//accellint:deepcopy
func (p *pair) Import(e export) {
	s := &stream{name: e.name}
	s.buf = e.replay // want `stored field retains caller-owned slice`
	p.streams = append(p.streams, s)
}

// ImportClean clones what it keeps; no findings.
//
//accellint:deepcopy
func (p *pair) ImportClean(e export) {
	s := &stream{
		name: e.name,
		buf:  append([]word(nil), e.replay...),
		tags: cloneTags(e.tags),
	}
	p.streams = append(p.streams, s)
}

// rawBlock aliases on purpose but carries no directive, so it is not
// checked.
func (p *pair) rawBlock() []word { return p.block }

func cloneTags(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
