// Package noalloc exercises the noalloc analyzer: functions marked
// //accellint:noalloc guard=TestName promise a zero-allocation steady
// state, so every construct that can allocate is a finding unless its line
// carries an //accellint:alloc cold-start exception. An annotation without
// a guard= argument is itself a finding — the static promise must be backed
// by a testing.AllocsPerRun test.
package noalloc

import "fmt"

type recorder struct {
	counts map[string]int
	sink   interface{}
	free   []int
}

func consume(v interface{}) { _ = v }

func (r *recorder) helper() {}

// hot trips every allocating-construct class the analyzer knows.
//
//accellint:noalloc guard=TestHotPathZeroAlloc
func (r *recorder) hot(n int, s string) {
	buf := make([]int, n)         // want `make allocates`
	p := new(recorder)            // want `new allocates`
	buf = append(buf, n)          // want `append may grow the backing array`
	r.counts[s] = n               // want `map write may grow buckets`
	pair := []int{n, n}           // want `slice/map literal allocates`
	q := &recorder{}              // want `&composite literal escapes to the heap`
	fn := func() int { return n } // want `closure allocates`
	go r.helper()                 // want `go statement allocates a goroutine`
	label := s + "!"              // want `string concatenation allocates`
	raw := []byte(s)              // want `string conversion copies its operand`
	fmt.Println(n)                // want `fmt call allocates`
	r.sink = n                    // want `interface boxing allocates`
	consume(n)                    // want `interface boxing allocates`
	bound := r.helper             // want `method value allocates its receiver binding`
	_, _, _, _, _, _, _, _ = p, pair, q, fn, label, raw, bound, buf
}

// coldStart carries the sanctioned lazy-sizing exception on its one
// allocating line.
//
//accellint:noalloc guard=TestColdStartZeroAlloc
func (r *recorder) coldStart() {
	if r.free == nil {
		//accellint:alloc first-touch lazy sizing
		r.free = make([]int, 8)
	}
	r.free = r.free[:0]
}

// unguarded promises noalloc without naming the AllocsPerRun test that
// proves it.
//
//accellint:noalloc
func unguarded() {} // want `needs guard=TestName naming its testing.AllocsPerRun test`

// unannotated functions may allocate freely.
func unannotated() []int { return make([]int, 4) }
