// Package ratalias exercises the ratalias analyzer: *big.Rat has pointer
// semantics and every arithmetic method mutates its receiver in place, so a
// Rat stored into a container or receiver state and then mutated corrupts
// the stored copy silently. Rule A covers store-then-mutate (straight-line
// and loop-carried); Rule B covers setters retaining a caller-owned Rat.
// The copy idiom new(big.Rat).Set(x) and fresh per-iteration allocation are
// the pass cases; //accellint:ratalias documents sanctioned sharing.
package ratalias

import "math/big"

var two = big.NewRat(2, 1)

type table struct {
	rates []*big.Rat
	rate  *big.Rat
	byKey map[string]*big.Rat
}

// storeThenMutate is the straight-line Rule A shape: the stored field
// aliases sum, so the Mul rewrites it retroactively.
func storeThenMutate(t *table, x, y *big.Rat) {
	sum := new(big.Rat).Add(x, y)
	t.rate = sum
	sum.Mul(sum, two) // want `sum is mutated in place after being stored into a container`
}

// scratchLoop is the loop-carried shape: textually the mutation precedes
// the store, but the next iteration mutates every previously stored element.
func scratchLoop(xs []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, 0, len(xs))
	scratch := new(big.Rat)
	for _, x := range xs {
		scratch.Mul(x, x)
		out = append(out, scratch) // want `scratch is stored and mutated in the same loop`
	}
	return out
}

// freshPerIteration allocates inside the loop: every element is distinct.
func freshPerIteration(xs []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, 0, len(xs))
	for _, x := range xs {
		v := new(big.Rat).Mul(x, x)
		out = append(out, v)
	}
	return out
}

// freshReset redefines v with fresh memory between the store and the later
// mutation, so the stored element is never touched again.
func freshReset(t *table, x *big.Rat) *big.Rat {
	v := new(big.Rat).Set(x)
	t.rate = v
	v = new(big.Rat).Set(x)
	v.Mul(v, v)
	return v
}

// sanctionedMutate documents a deliberate in-place rescale: the field is
// republished from a fresh copy right after.
func sanctionedMutate(t *table, x, y *big.Rat) {
	sum := new(big.Rat).Add(x, y)
	t.rate = sum
	//accellint:ratalias rate is republished from a fresh copy below
	sum.Mul(sum, two)
	t.rate = new(big.Rat).Set(sum)
}

// retain is the Rule B shape: the receiver keeps the caller's memory.
func (t *table) retain(r *big.Rat) {
	t.rate = r // want `receiver retains a caller-owned`
}

// retainMap and retainAppend retain through element stores.
func (t *table) retainMap(k string, r *big.Rat) {
	t.byKey[k] = r // want `receiver retains a caller-owned`
}

func (t *table) retainAppend(r *big.Rat) {
	t.rates = append(t.rates, r) // want `receiver retains a caller-owned`
}

// retainDerived launders the caller's Rat through a chained method — big.Rat
// methods return their receiver, so scaled still aliases caller memory.
func (t *table) retainDerived(r *big.Rat) {
	scaled := r.Mul(r, two)
	t.rate = scaled // want `receiver retains a caller-owned`
}

// retainCopy is the sanctioned idiom: fresh receiver, fresh stored value.
func (t *table) retainCopy(r *big.Rat) {
	t.rate = new(big.Rat).Set(r)
}

// bump mutates a field-held Rat: the owner updating its own state is fine.
func (t *table) bump(x *big.Rat) {
	t.rate.Add(t.rate, x)
}

// sanctionedShare documents a deliberate ownership hand-off.
func (t *table) sanctionedShare(r *big.Rat) {
	//accellint:ratalias caller transfers ownership by contract
	t.rate = r
}
