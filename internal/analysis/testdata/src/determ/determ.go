// Package determ exercises the determinism analyzer: wall-clock reads,
// global math/rand draws, and order-observing map iteration are findings;
// seeded generators and the collect-then-sort idiom are not.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `wall-clock read time\.Now`
	return t.Unix()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

func globalRand() int {
	return rand.Intn(8) // want `global rand\.Intn`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded local generator: fine
	return r.Intn(8)
}

func emit(m map[string]int) {
	for k, v := range m { // want `map iteration order`
		fmt.Println(k, v)
	}
}

func sortedEmit(m map[string]int) {
	names := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom: fine
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Println(k, m[k])
	}
}

func aggregate(m map[string]int) int {
	n := 0
	seen := map[int]bool{}
	for _, v := range m { // map writes and integer sums commute: fine
		seen[v] = true
		n += v
	}
	return n + len(seen)
}

// backoffDelay is the fault.Backoff pattern: a bounded geometric delay
// computed from pure integers — deterministic, no findings.
func backoffDelay(attempt int) int64 {
	d := int64(200)
	for i := 0; i < attempt; i++ {
		d *= 2
		if d > 3200 {
			return 3200
		}
	}
	return d
}

// jitteredBackoff is the tempting variant the analyzer exists to reject:
// decorrelating retries via the process-global random source would make
// every campaign replay diverge.
func jitteredBackoff(attempt int) int64 {
	return backoffDelay(attempt) + rand.Int63n(50) // want `global rand\.Int63n`
}

type thing struct{ hits int }

func annotated(m map[string]*thing) {
	//accellint:unordered every entry gets the same reset; order cannot matter
	for _, t := range m {
		t.hits = 0
	}
}
