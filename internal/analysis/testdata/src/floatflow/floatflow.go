// Package floatflow exercises the floatflow analyzer against the core and
// solve stubs: no float-derived value may reach a bound comparison, a bound
// field or a transcript-marked emitter without exact re-verification. The
// dataflow version catches what the old syntactic boundcheck rule could not:
// floats laundered through locals, integer conversions, arithmetic and
// branch joins. The sanctioned route — solve.Verify on the candidate — and
// explicit //accellint:floatflow suppressions are the pass cases.
package floatflow

import (
	"fmt"

	"core"
	"solve"
)

// launderedComparison smuggles the float through an intermediate local and a
// uint64 conversion; the old syntactic rule saw `candidate <= tau` as
// integer-only, the taint analysis does not.
func launderedComparison(s *core.System, estimate float64) (bool, error) {
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	candidate := uint64(estimate)
	return candidate <= tau, nil // want `float-derived value reaches a bound comparison without exact re-verification`
}

// helperFlow launders through arithmetic on the float side before rounding.
func helperFlow(s *core.System, estimate float64) (bool, error) {
	gamma, err := s.GammaHat(0)
	if err != nil {
		return false, err
	}
	padded := estimate * 1.0625
	rounded := int64(padded) + 1
	return uint64(rounded) > gamma, nil // want `float-derived value reaches a bound comparison without exact re-verification`
}

// boundOntoFloats hoists the bound onto the float side instead.
func boundOntoFloats(s *core.System, estimate float64) (bool, error) {
	gamma, err := s.GammaHat(0)
	if err != nil {
		return false, err
	}
	return estimate <= float64(gamma), nil // want `float-derived value reaches a bound comparison without exact re-verification`
}

// joinMerge taints the candidate on only one branch; the conservative merge
// at the join point keeps the taint alive on the fallthrough path.
func joinMerge(s *core.System, estimate float64, exact uint64, fast bool) (bool, error) {
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	candidate := exact
	if fast {
		candidate = uint64(estimate)
	}
	return candidate <= tau, nil // want `float-derived value reaches a bound comparison without exact re-verification`
}

type ladderStep struct {
	Name  string
	Bound uint64
}

type streamBounds struct {
	TauHat uint64
}

// storeBound writes a float-derived value into a recorded bound field.
func storeBound(estimate float64) ladderStep {
	var step ladderStep
	step.Bound = uint64(estimate) // want `float-derived value stored into bound field Bound; recorded bounds must come from exact arithmetic`
	return step
}

// literalBounds does the same through composite literals.
func literalBounds(estimate float64) (ladderStep, streamBounds) {
	return ladderStep{Bound: uint64(estimate)}, // want `float-derived value stored into bound field Bound; recorded bounds must come from exact arithmetic`
		streamBounds{TauHat: uint64(estimate)} // want `float-derived value stored into bound field TauHat; recorded bounds must come from exact arithmetic`
}

// emit is a transcript-marked campaign emitter: the golden gate diffs its
// bytes, so float-derived arguments are findings; exact integers are not.
//
//accellint:transcript golden transcript must stay float-free
func emit(share float64, cycles uint64) {
	fmt.Printf("cycles %d\n", cycles)
	fmt.Printf("share %.3f\n", share) // want `float-derived value written to a byte-deterministic campaign transcript`
}

// debugPrint is unmarked: diagnostics may print floats freely.
func debugPrint(share float64) {
	fmt.Printf("share %.3f\n", share)
}

// verified is the sanctioned route: the rounded candidate passes through
// solve.Verify, which sanitizes it, and only then meets the bound.
func verified(s *core.System, estimate float64) (bool, error) {
	blocks := []int64{int64(estimate) + 1}
	v := solve.Verify(s, 8, blocks)
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	return v.Feasible && uint64(blocks[0]) <= tau, nil // exact re-verification upstream: fine
}

// suppressed documents a sanctioned exception on the finding's line.
func suppressed(s *core.System, estimate float64) (bool, error) {
	tau, err := s.TauHat(0)
	if err != nil {
		return false, err
	}
	//accellint:floatflow estimate is integral by construction in this demo
	return uint64(estimate) <= tau, nil
}

// floatMathElsewhere never meets a bound: no finding.
func floatMathElsewhere(estimate float64) float64 {
	return float64(int64(estimate * 2))
}
