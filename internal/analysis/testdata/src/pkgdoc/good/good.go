// Package good carries a package doc comment, so pkgdoc stays quiet.
package good

// Placeholder keeps the package non-empty.
const Placeholder = 1
