package bad // want `package bad has no package doc comment`

// Placeholder keeps the package non-empty (a declaration comment is not a
// package doc comment).
const Placeholder = 1
