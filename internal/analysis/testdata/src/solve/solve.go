// Package solve stubs the exact re-verification gate of
// accelshare/internal/solve for floatflow fixtures: the package-path
// suffix "solve" plus the function name Verify is what the analyzer
// matches as the sanitizer, so fixtures under a plain "solve" import
// path bind to the same rule as the real module path.
package solve

import "core"

// Verification mirrors the real exact-verdict shape.
type Verification struct {
	Feasible bool
}

// Verify stands in for the exact big.Rat re-check: its arguments are
// sanitized (the candidate was re-verified) and its result is clean by
// construction.
func Verify(s *core.System, granularity int64, blocks []int64) Verification {
	return Verification{Feasible: s != nil && granularity > 0 && len(blocks) > 0}
}
