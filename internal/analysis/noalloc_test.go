package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestNoAllocFixture(t *testing.T) {
	// Every allocating-construct class the analyzer knows fires inside a
	// //accellint:noalloc function; the //accellint:alloc cold-start
	// exception suppresses its line; an annotation without guard= is itself
	// a finding. Strict mode proves the fixture's directives are all live.
	analysistest.RunStrict(t, "testdata", "noalloc", analysis.NewNoAlloc())
}
