package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestDeterminismFixture(t *testing.T) {
	// Fixtures live outside the module's covered import paths, so cover
	// everything the fixture loader hands the analyzer.
	all := func(string) bool { return true }
	analysistest.Run(t, "testdata", "determ", analysis.NewDeterminism(all))
}

func TestDeterminismCoverage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"accelshare/internal/admission", true},
		{"accelshare/internal/gateway", true},
		{"accelshare/internal/mpsoc", true},
		{"accelshare/internal/sim", true},
		{"accelshare/internal/trace", true},
		{"accelshare/internal/conformance", true},
		{"accelshare/cmd/accelshare", true},
		{"accelshare/internal/core", false},
		{"accelshare/internal/dataflow", false},
		{"accelshare/cmd/accellint", false},
		{"accelshare/internal/simulator", false}, // prefix of a covered name is not covered
	}
	for _, c := range cases {
		if got := analysis.DeterminismCovered(c.path); got != c.want {
			t.Errorf("DeterminismCovered(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
