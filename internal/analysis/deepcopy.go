// The deepcopy analyzer. The failover path freezes a sick gateway pair,
// exports every stream's state, and imports it on the standby while the
// rest of the platform keeps running — so an export that aliases the dead
// pair's internals (or an import that retains the caller's slices) is a
// data race and a value-corruption hazard that -race only catches when a
// test happens to mutate both sides. Functions marked with an
// //accellint:deepcopy directive in their doc comment are held to the
// hand-off contract statically:
//
//   - no returned value may carry a slice or map reachable from the
//     receiver, unless it passed through a clone (a call, or the
//     append(fresh, src...) idiom with a non-receiver first argument)
//   - no parameter-reachable slice or map may be stored into a field of
//     anything (retention); binding it to a plain local is fine
//
// Pointers and strings are exempt: *Stream hand-off is the documented
// ownership transfer (the exporter empties its table), and strings are
// immutable. The analysis is intra-procedural and assumes any non-append
// call returns fresh memory; cloneState-style helpers therefore pass.

package analysis

import (
	"go/ast"
	"go/types"
)

type rootKind int

const (
	rootNone rootKind = iota
	rootRecv
	rootParam
)

// NewDeepCopy builds the export-aliasing analyzer over directive-marked
// functions.
func NewDeepCopy() *Analyzer {
	a := &Analyzer{
		Name: "deepcopy",
		Doc:  "//accellint:deepcopy functions must not export receiver-owned or retain caller-owned slices/maps",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, marked := pass.DocDirective(fd.Doc, "deepcopy"); !marked {
					continue
				}
				checkDeepCopy(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkDeepCopy(pass *Pass, fd *ast.FuncDecl) {
	roots := map[types.Object]rootKind{}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				if obj := pass.Info.Defs[n]; obj != nil {
					roots[obj] = rootRecv
				}
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			if obj := pass.Info.Defs[n]; obj != nil {
				roots[obj] = rootParam
			}
		}
	}

	ret := returnedObjects(pass, fd)

	kindOf := func(e ast.Expr) rootKind { return exprRoot(pass, e, roots) }

	var flagComposite func(lit *ast.CompositeLit)
	flagComposite = func(lit *ast.CompositeLit) {
		for _, elt := range lit.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if inner, ok := v.(*ast.CompositeLit); ok {
				flagComposite(inner)
				continue
			}
			if kindOf(v) == rootRecv && isRefCollection(pass, v) {
				pass.Reportf(v.Pos(), "returned composite aliases receiver-owned %s; deep-copy it (append/clone) before export", typeWord(pass, v))
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := n.Rhs[i]
				rk := kindOf(rhs)
				switch l := lhs.(type) {
				case *ast.Ident:
					if obj := objOf(pass, l); obj != nil && rk != rootNone {
						roots[obj] = rk
					}
					if lit, ok := rhs.(*ast.CompositeLit); ok && ret[objOf(pass, l)] {
						flagComposite(lit)
					}
					if obj := objOf(pass, l); obj != nil && ret[obj] && rk == rootRecv && isRefCollection(pass, rhs) {
						pass.Reportf(rhs.Pos(), "returned value aliases receiver-owned %s; deep-copy it before export", typeWord(pass, rhs))
					}
					if obj := objOf(pass, l); obj != nil && ret[obj] {
						checkAppendInto(pass, rhs, kindOf)
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if rk == rootParam && isRefCollection(pass, rhs) {
						pass.Reportf(rhs.Pos(), "stored field retains caller-owned %s; deep-copy it on import", typeWord(pass, rhs))
					}
					if rootIdentKind(pass, lhs, ret) && rk == rootRecv && isRefCollection(pass, rhs) {
						pass.Reportf(rhs.Pos(), "returned value aliases receiver-owned %s; deep-copy it before export", typeWord(pass, rhs))
					}
					if rootIdentKind(pass, lhs, ret) {
						if lit, ok := rhs.(*ast.CompositeLit); ok {
							flagComposite(lit)
						}
					}
				}
			}
		case *ast.RangeStmt:
			rk := kindOf(n.X)
			if rk != rootNone {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.Info.Defs[id]; obj != nil {
						roots[obj] = rk
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if kindOf(res) == rootRecv && isRefCollection(pass, res) {
					pass.Reportf(res.Pos(), "return aliases receiver-owned %s; deep-copy it before export", typeWord(pass, res))
				}
				if lit, ok := res.(*ast.CompositeLit); ok {
					flagComposite(lit)
				}
			}
		}
		return true
	})
}

// checkAppendInto flags `out = append(out, src)` / `append(out, src...)`
// where out is returned and src carries receiver-owned reference
// collections into it.
func checkAppendInto(pass *Pass, rhs ast.Expr, kindOf func(ast.Expr) rootKind) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") {
		return
	}
	for i, arg := range call.Args[1:] {
		if kindOf(arg) != rootRecv {
			continue
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
			// append(out, src...) copies src's elements; that only aliases
			// when the elements are themselves slices or maps.
			if t := pass.Info.Types[arg].Type; t != nil {
				if s, ok := t.Underlying().(*types.Slice); ok && isRefCollectionType(s.Elem()) {
					pass.Reportf(arg.Pos(), "appended elements of receiver-owned %s are slices/maps and still alias; deep-copy them", typeWord(pass, arg))
				}
			}
			continue
		}
		if isRefCollection(pass, arg) {
			pass.Reportf(arg.Pos(), "append retains receiver-owned %s in the returned slice; deep-copy it", typeWord(pass, arg))
		}
	}
}

// returnedObjects computes the set of objects whose value can flow into a
// return: named results, idents mentioned in return statements, and (by
// fixpoint) idents assigned into fields/elements of those.
func returnedObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	ret := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				if obj := pass.Info.Defs[n]; obj != nil {
					ret[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range rs.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					ret[obj] = true
				}
			}
		}
		return true
	})
	// Fixpoint: exports[i] = ex makes ex's fields part of the return.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := as.Rhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil || ret[obj] {
					continue
				}
				if rootIdentKind(pass, lhs, ret) {
					ret[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return ret
}

// rootIdentKind reports whether lhs is (a field/element chain rooted at) an
// identifier in set.
func rootIdentKind(pass *Pass, lhs ast.Expr, set map[types.Object]bool) bool {
	for {
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := objOf(pass, l)
			return obj != nil && set[obj]
		case *ast.SelectorExpr:
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.StarExpr:
			lhs = l.X
		case *ast.ParenExpr:
			lhs = l.X
		default:
			return false
		}
	}
}

// exprRoot walks e to its root and classifies what the expression's value
// can alias. Calls are assumed to return fresh memory (clone helpers), with
// the exception of append, whose result aliases its first argument, and
// slicing, which aliases its operand.
func exprRoot(pass *Pass, e ast.Expr, roots map[types.Object]rootKind) rootKind {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return roots[obj]
			}
			return rootNone
		case *ast.SelectorExpr:
			// Qualified package identifiers root nothing.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
					return rootNone
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if isBuiltin(pass, x.Fun, "append") && len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return rootNone
		default:
			return rootNone
		}
	}
}

// isRefCollection reports whether e's static type is a slice or map — the
// types whose aliasing the deep-copy contract is about.
func isRefCollection(pass *Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	return t != nil && isRefCollectionType(t)
}

func isRefCollectionType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func typeWord(pass *Pass, e ast.Expr) string {
	if t := pass.Info.Types[e].Type; t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return "map"
		}
	}
	return "slice"
}
