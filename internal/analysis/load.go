// Package loading for accellint. The module deliberately has no external
// dependencies, so this is a minimal stand-in for go/packages: it walks a
// module tree (or a GOPATH-style fixture root), parses each package's
// non-test files, and type-checks them in dependency order with in-module
// imports resolved from the same walk and everything else (the stdlib)
// compiled from source by go/importer's "source" importer — which works
// offline and needs no pre-built export data.
//
// Test files are intentionally excluded: the invariants accellint enforces
// are about what ships in the campaign/replay path, and tests are free to
// use wall-clock timeouts, random property sweeps and unordered iteration.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked, non-test package of the analyzed tree.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves and type-checks packages. In-module (or in-fixture)
// import paths registered by AddModule/AddFixtureRoot are loaded from
// source on demand; all other paths fall through to the stdlib source
// importer.
type Loader struct {
	Fset    *token.FileSet
	dirs    map[string]string // import path → directory
	loaded  map[string]*Package
	loading map[string]bool // cycle detection
	std     types.Importer
}

// NewLoader returns an empty loader with a fresh FileSet.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		dirs:    map[string]string{},
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

// AddModule registers every package under root, a module directory whose
// go.mod declares modulePath. Directories named testdata, vendor, or
// starting with "." or "_" are skipped, as are directories without
// buildable non-test Go files.
func (l *Loader) AddModule(root, modulePath string) error {
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = path
		return nil
	})
}

// AddFixtureRoot registers every package under a GOPATH-style src root:
// the import path of srcRoot/a/b is "a/b". Used by analysistest.
func (l *Loader) AddFixtureRoot(srcRoot string) error {
	return filepath.Walk(srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() || path == srcRoot {
			return nil
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil {
			return err
		}
		l.dirs[filepath.ToSlash(rel)] = path
		return nil
	})
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true, nil
	}
	return false, nil
}

// Paths returns every registered import path, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LoadAll loads every registered package, in sorted path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	for _, p := range l.Paths() {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Load parses and type-checks one registered package (and, recursively,
// its registered dependencies).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("load %s: not a registered package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load %s: import cycle", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	for _, fn := range names {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if _, ok := l.dirs[ip]; ok {
				dep, err := l.Load(ip)
				if err != nil {
					return nil, err
				}
				return dep.Types, nil
			}
			return l.std.Import(ip)
		}),
		Error: func(err error) { terrs = append(terrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("load %s: %v", path, terrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// moduleName reads the module path from root/go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// LoadTree is the driver entry point: register and load every package of
// the module rooted at root.
func LoadTree(root string) (*token.FileSet, []*Package, error) {
	mod, err := moduleName(root)
	if err != nil {
		return nil, nil, err
	}
	l := NewLoader()
	if err := l.AddModule(root, mod); err != nil {
		return nil, nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, nil, err
	}
	return l.Fset, pkgs, nil
}
