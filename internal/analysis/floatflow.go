// The floatflow analyzer: verify-don't-trust, enforced by dataflow. The
// solver's float64 fast path (PR 7) is sound only because every candidate
// plan is re-verified with exact big.Rat arithmetic (solve.Verify) before
// it may carry a guarantee — a float value that reaches a bound comparison,
// a recorded bound field or a byte-deterministic campaign transcript by any
// other route silently converts rounding error into a "proven" real-time
// property. boundcheck's PR-7 float rule caught only conversions spelled
// inside the comparison expression itself; this analyzer replaces it with
// the dataflow version: TaintFloat marks every value derived from float
// arithmetic — through locals, helpers, integer rounding and struct fields
// — TaintBound marks every value derived from a model bound, and the two
// must never meet unless the float-derived candidate passed through
// solve.Verify.
//
// Sinks:
//
//   - a comparison whose operands carry both TaintFloat and TaintBound
//   - a store of a float-derived value into a bound-carrying field (Bound,
//     *Bound, or the StreamBounds TauHat/GammaHat fields)
//   - a float-derived argument to a fmt print call inside a function marked
//     //accellint:transcript (the byte-deterministic campaign emitters)
//
// Sanctioned flows are suppressed with //accellint:floatflow <reason> on
// the finding's line. The defining core package is exempt (its internals
// implement the bounds), as is the solve package's own float machinery
// below the Verify boundary (fast.go routes every candidate through it; the
// analyzer sees those objects as sanitized).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// boundFieldNames are the exact field names that carry a model bound in
// recorded artifacts: LadderStep.Bound, conformance.StreamBounds.TauHat /
// GammaHat. The "Bound" suffix rule below catches ReplayBound-style names.
var boundFieldNames = map[string]bool{"Bound": true, "TauHat": true, "GammaHat": true}

func isBoundField(name string) bool {
	return boundFieldNames[name] || strings.HasSuffix(name, "Bound")
}

// NewFloatFlow builds the float-taint analyzer.
func NewFloatFlow() *Analyzer {
	a := &Analyzer{
		Name: "floatflow",
		Doc:  "float-derived values must not reach bound comparisons, bound fields or campaign transcripts without solve.Verify",
	}
	a.Run = func(pass *Pass) error {
		if isCorePkg(pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFloatFlow(pass, file, fd)
			}
		}
		return nil
	}
	return a
}

var floatFlowConfig = FlowConfig{
	Source:    floatFlowSource,
	Transfer:  floatFlowTransfer,
	Sanitizes: floatFlowSanitizes,
	FieldRead: floatFlowFieldRead,
}

// floatFlowFieldRead drops TaintFloat at reads of integer-typed fields: a
// measured cycle counter inside a report struct that also carries float
// shares is not itself float-derived. Laundering a float through an
// explicit conversion (int64(f)) still taints — conversions pass taint
// unconditionally; only the struct-granularity over-approximation is
// masked here.
func floatFlowFieldRead(f *Flow, sel *ast.SelectorExpr, container Taint) Taint {
	v, ok := f.Pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return container
	}
	if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		return container &^ TaintFloat
	}
	return container
}

// floatFlowSource introduces TaintFloat at every non-constant float-typed
// expression and TaintBound at bound-method calls and bound-field reads.
func floatFlowSource(pass *Pass, e ast.Expr) Taint {
	var t Taint
	if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			t |= TaintFloat
		}
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if isBoundCall(pass, x) {
			t |= TaintBound
		}
	case *ast.SelectorExpr:
		if v, ok := pass.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() && isBoundField(v.Name()) {
			t |= TaintBound
		}
	}
	return t
}

// floatFlowTransfer keeps the conservative argument-union default except at
// the sanitizer itself: solve.Verify's result is the exact verdict, clean
// by construction.
func floatFlowTransfer(f *Flow, call *ast.CallExpr, args Taint) Taint {
	if isSolveVerifyCall(f.Pass, call) {
		return 0
	}
	return args
}

// floatFlowSanitizes trusts every argument of a solve.Verify call: the
// candidate blocks it re-verified exactly may meet bounds afterwards.
func floatFlowSanitizes(pass *Pass, call *ast.CallExpr) []ast.Expr {
	if !isSolveVerifyCall(pass, call) {
		return nil
	}
	return call.Args
}

// isSolveVerifyCall matches solve.Verify — the exact re-verification gate —
// by function name and defining package suffix, so the fixture stub package
// "solve" binds to the same rule as the real module path.
func isSolveVerifyCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Verify" || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "solve" || strings.HasSuffix(p, "/solve")
}

func checkFloatFlow(pass *Pass, file *ast.File, fd *ast.FuncDecl) {
	flow := NewFlow(pass, fd, floatFlowConfig)
	_, transcript := pass.DocDirective(fd.Doc, "transcript")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				// Only numeric comparisons can check a bound; err != nil on a
				// bound call's error is the correct discipline, not a sink.
				if !isNumericExpr(pass, n.X) || !isNumericExpr(pass, n.Y) {
					return true
				}
				t := flow.ExprTaint(n.X) | flow.ExprTaint(n.Y)
				if t&TaintFloat != 0 && t&TaintBound != 0 {
					if !pass.LineDirective(file, n.OpPos, "floatflow") {
						pass.Reportf(n.OpPos,
							"float-derived value reaches a bound comparison without exact re-verification; round the candidate and pass it through solve.Verify first")
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !v.IsField() || !isBoundField(v.Name()) {
					continue
				}
				if flow.ExprTaint(n.Rhs[i])&TaintFloat != 0 {
					if !pass.LineDirective(file, n.Rhs[i].Pos(), "floatflow") {
						pass.Reportf(n.Rhs[i].Pos(),
							"float-derived value stored into bound field %s; recorded bounds must come from exact arithmetic", v.Name())
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !isBoundField(key.Name) {
					continue
				}
				if _, isStruct := typeUnder(pass, n).(*types.Struct); !isStruct {
					continue
				}
				if flow.ExprTaint(kv.Value)&TaintFloat != 0 {
					if !pass.LineDirective(file, kv.Value.Pos(), "floatflow") {
						pass.Reportf(kv.Value.Pos(),
							"float-derived value stored into bound field %s; recorded bounds must come from exact arithmetic", key.Name)
					}
				}
			}
		case *ast.CallExpr:
			if !transcript || !isFmtPrintCall(pass, n) {
				return true
			}
			for _, arg := range n.Args {
				if flow.ExprTaint(arg)&TaintFloat != 0 {
					if !pass.LineDirective(file, arg.Pos(), "floatflow") {
						pass.Reportf(arg.Pos(),
							"float-derived value written to a byte-deterministic campaign transcript; emit exact integers or rationals instead")
					}
				}
			}
		}
		return true
	})
}

// isFmtPrintCall matches the fmt print family (Print/Printf/Println and the
// F/S variants) — the way transcript emitters write.
func isFmtPrintCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(strings.TrimPrefix(strings.TrimPrefix(fn.Name(), "F"), "S"), "Print")
}

func isNumericExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func typeUnder(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}
