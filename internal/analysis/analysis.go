// Package analysis is accellint: a static-analysis suite that turns the
// repository's dynamic invariants into compile-time properties. Every
// guarantee the reproduction makes — byte-deterministic campaigns, measured
// cost ≤ τ̂s/γ̂s bounds (Eq. 2/4), race-free deep-copied state export during
// failover — is otherwise enforced only by golden files, the conformance
// harness and -race runs, which sample around violations instead of ruling
// them out. The suite encodes four invariant families as analyzers:
//
//	determinism  no wall-clock (time.Now), no global math/rand, and no
//	             unsorted map iteration in the packages whose output feeds
//	             traces, golden files or campaign emitters
//	boundcheck   every call to a core bound function (τ̂, τ̂(K), γ̂, resume
//	             bound, ...) checks its error, and bound comparisons do not
//	             smuggle signed values through unsigned conversions or
//	             truncate cycle arithmetic with integer division
//	deepcopy     functions marked //accellint:deepcopy (the failover and
//	             snapshot export path) neither return receiver-reachable
//	             slices/maps nor retain parameter-reachable ones
//	pkgdoc       every package carries a package doc comment (the package
//	             docs double as the design reference)
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) but is self-contained: the module has
// no dependencies, so loading and type-checking are built on go/parser and
// go/types with the stdlib source importer. cmd/accellint is the
// multichecker binary; analysistest runs fixtures with // want comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. It mirrors the x/tools
// go/analysis Analyzer surface that this suite needs: a name (printed with
// each diagnostic and used by suppression directives), a doc string, and a
// Run function over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass hands an Analyzer one type-checked package. Report appends to the
// driver's diagnostic list; analyzers never print directly.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)
	// used records which directive comments an analyzer actually consulted,
	// shared across every pass of one Run so the driver can report stale
	// directives afterwards.
	used map[token.Pos]bool
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Options configures one Run of the suite.
type Options struct {
	// CheckDirectives reports //accellint: comments that no analyzer
	// consumed — a suppression whose finding no longer fires, a marker on
	// nothing, or a misspelled name. On by default in cmd/accellint and
	// TestSuiteCleanOnRepo so directives cannot rot.
	CheckDirectives bool
}

// Run applies every analyzer to every package and returns the diagnostics
// sorted by position (filename, then offset) so output is deterministic —
// the suite holds itself to the invariant it enforces.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunOpts(fset, pkgs, analyzers, Options{})
}

// RunOpts is Run with explicit Options.
func RunOpts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	used := map[token.Pos]bool{}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				used:     used,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if opts.CheckDirectives {
		diags = append(diags, staleDirectives(pkgs, used)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// LineDirective reports whether a comment of the form "//accellint:<name>"
// (optionally followed by a justification) sits on the same line as pos or
// on the line immediately above it, and records the directive as consumed.
// Directives are the suite's escape hatch: each use states in-source why
// the invariant holds anyway. Analyzers must only call this where a finding
// would otherwise fire, so an un-consulted directive is reported as stale.
func (p *Pass) LineDirective(file *ast.File, pos token.Pos, name string) bool {
	line := p.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := p.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			d, ok := ParseDirective(c.Text)
			if ok && d.Name == name {
				p.consume(c.Pos())
				return true
			}
		}
	}
	return false
}

// DocDirective reports whether a declaration's doc comment carries the
// "//accellint:<name>" marker, returning the parsed directive (for its
// arguments) and recording it as consumed.
func (p *Pass) DocDirective(doc *ast.CommentGroup, name string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		d, ok := ParseDirective(c.Text)
		if ok && d.Name == name {
			p.consume(c.Pos())
			return d, true
		}
	}
	return Directive{}, false
}

func (p *Pass) consume(pos token.Pos) {
	if p.used != nil {
		p.used[pos] = true
	}
}

// staleDirectives scans every //accellint: comment of the analyzed packages
// and reports the ones no analyzer consumed: unknown names (a typo that
// suppresses nothing while looking load-bearing) and known names that
// neither suppressed a finding nor marked a declaration the analyzers
// visited. This is what keeps directives honest — deleting the code a
// directive excused makes the directive itself a finding.
func staleDirectives(pkgs []*Package, used map[token.Pos]bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d, ok := ParseDirective(c.Text)
					if !ok || used[c.Pos()] {
						continue
					}
					var msg string
					switch {
					case !knownDirectives[d.Name]:
						msg = fmt.Sprintf("unknown accellint directive %q; known: %s", d.Name, strings.Join(knownDirectiveNames(), ", "))
					default:
						msg = fmt.Sprintf("stale //accellint:%s directive suppresses or marks nothing; delete it or move it to the finding it excuses", d.Name)
					}
					diags = append(diags, Diagnostic{Pos: c.Pos(), Message: msg, Analyzer: "directive"})
				}
			}
		}
	}
	return diags
}

func knownDirectiveNames() []string {
	names := make([]string, 0, len(knownDirectives))
	for n := range knownDirectives {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
