package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestDeepCopyFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "deepcopy", analysis.NewDeepCopy())
}
