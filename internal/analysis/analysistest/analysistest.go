// Package analysistest runs accellint analyzers over fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixtures live
// under testdata/src/<importpath>/ and annotate expected findings with
// trailing comments of the form
//
//	// want "regexp" "regexp2"
//
// Every diagnostic must match a want on its line, and every want must be
// matched by exactly one diagnostic. Fixture packages may import sibling
// fixture packages ("core", ...) and the stdlib; both resolve offline.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"accelshare/internal/analysis"
)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkgpath> beneath dir and applies the analyzers,
// comparing diagnostics against // want comments.
func Run(t *testing.T, dir, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	run(t, dir, pkgpath, analysis.Options{}, analyzers)
}

// RunStrict is Run with CheckDirectives on: beyond the want comparison, any
// //accellint: directive in the fixture that no analyzer consumed surfaces
// as an unexpected "directive" diagnostic. Running suppression fixtures
// through it proves their directives are live, not decorative.
func RunStrict(t *testing.T, dir, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	run(t, dir, pkgpath, analysis.Options{CheckDirectives: true}, analyzers)
}

func run(t *testing.T, dir, pkgpath string, opts analysis.Options, analyzers []*analysis.Analyzer) {
	t.Helper()
	l := analysis.NewLoader()
	if err := l.AddFixtureRoot(filepath.Join(dir, "src")); err != nil {
		t.Fatalf("fixture root: %v", err)
	}
	pkg, err := l.Load(pkgpath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunOpts(l.Fset, []*analysis.Package{pkg}, analyzers, opts)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	wants, err := collectWants(l.Fset, pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// wantRE matches one expectation pattern, either "double-quoted" (escapes
// unquoted via strconv) or `backquoted` (taken raw), as in x/tools.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(fset *token.FileSet, pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[2]
					if m[1] != "" || m[2] == "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants, nil
}
