package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestBoundCheckFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "bound", analysis.NewBoundCheck())
}

func TestBoundCheckExemptsDefiningPackage(t *testing.T) {
	// The core stub truncates a bound internally (half); the defining
	// package is exempt from the arithmetic rules, so the fixture carries
	// no want comments and must produce no diagnostics.
	analysistest.Run(t, "testdata", "core", analysis.NewBoundCheck())
}
