package analysis_test

import (
	"testing"

	"accelshare/internal/analysis"
	"accelshare/internal/analysis/analysistest"
)

func TestBoundCheckFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "bound", analysis.NewBoundCheck())
}

func TestBoundCheckFloatFixture(t *testing.T) {
	// Verify-don't-trust at the lint layer: no float value may flow into a
	// bound comparison without exact re-verification (solve.Verify).
	analysistest.Run(t, "testdata", "boundfloat", analysis.NewBoundCheck())
}

func TestBoundCheckExemptsDefiningPackage(t *testing.T) {
	// The core stub truncates a bound internally (half); the defining
	// package is exempt from the arithmetic rules, so the fixture carries
	// no want comments and must produce no diagnostics.
	analysistest.Run(t, "testdata", "core", analysis.NewBoundCheck())
}
