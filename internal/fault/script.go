package fault

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"accelshare/internal/sim"
)

// ParseScript reads a fault campaign script: one fault per line,
//
//	<at> wedge-link site=<link> [dur=<cycles>]
//	<at> wedge-node site=<node> [dur=<cycles>]
//	<at> stick-engine stream=<i> site=<tile> [sample=<n>]
//	<at> drop-sample stream=<i> site=<tile> [sample=<n>] [count=<n>]
//	<at> corrupt-sample stream=<i> site=<tile> [sample=<n>] [count=<n>] [mask=<m>]
//	<at> lose-idle stream=<i> [block=<n>] [count=<n>]
//
// with '#' comments and blank lines ignored. <at> is the wedge onset time in
// simulation cycles (engine/idle faults trigger on their sample or block
// index instead; their <at> column is kept for uniformity and must still
// parse). dur=0 wedges permanently. Times must be non-decreasing so scripts
// read like a timeline. Malformed input yields an error, never a panic.
func ParseScript(text string) (*Plan, error) {
	plan := &Plan{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	var last sim.Time
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault script line %d: want '<at> <kind> key=value...', got %q", lineNo, line)
		}
		at, err := strconv.ParseUint(fields[0], 10, 63)
		if err != nil {
			return nil, fmt.Errorf("fault script line %d: bad time %q", lineNo, fields[0])
		}
		f := Fault{At: sim.Time(at), Stream: -1, Site: -1}
		switch fields[1] {
		case "wedge-link":
			f.Kind = WedgeLink
		case "wedge-node":
			f.Kind = WedgeNode
		case "stick-engine":
			f.Kind = StickEngine
		case "drop-sample":
			f.Kind = DropSample
		case "corrupt-sample":
			f.Kind = CorruptSample
		case "lose-idle":
			f.Kind = LoseIdle
		default:
			return nil, fmt.Errorf("fault script line %d: unknown fault kind %q", lineNo, fields[1])
		}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault script line %d: bad parameter %q", lineNo, kv)
			}
			switch key {
			case "site":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault script line %d: bad site %q", lineNo, val)
				}
				f.Site = n
			case "stream":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault script line %d: bad stream %q", lineNo, val)
				}
				f.Stream = n
			case "sample":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault script line %d: bad sample %q", lineNo, val)
				}
				f.Sample = n
			case "count":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fault script line %d: bad count %q", lineNo, val)
				}
				f.Count = n
			case "block":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault script line %d: bad block %q", lineNo, val)
				}
				f.Block = n
			case "dur":
				n, err := strconv.ParseUint(val, 10, 63)
				if err != nil {
					return nil, fmt.Errorf("fault script line %d: bad dur %q", lineNo, val)
				}
				f.Duration = sim.Time(n)
			case "mask":
				n, err := strconv.ParseUint(val, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("fault script line %d: bad mask %q", lineNo, val)
				}
				f.Mask = sim.Word(n)
			default:
				return nil, fmt.Errorf("fault script line %d: unknown parameter %q", lineNo, key)
			}
		}
		switch f.Kind {
		case WedgeLink, WedgeNode:
			if f.Site < 0 {
				return nil, fmt.Errorf("fault script line %d: %s needs site=", lineNo, f.Kind)
			}
			f.Stream = 0 // unused for wedges; keep the zero-value convention
		case StickEngine, DropSample, CorruptSample:
			if f.Stream < 0 || f.Site < 0 {
				return nil, fmt.Errorf("fault script line %d: %s needs stream= and site=", lineNo, f.Kind)
			}
		case LoseIdle:
			if f.Stream < 0 {
				return nil, fmt.Errorf("fault script line %d: lose-idle needs stream=", lineNo)
			}
			f.Site = 0
		}
		if f.Site < 0 {
			f.Site = 0
		}
		if f.At < last {
			return nil, fmt.Errorf("fault script line %d: times must be non-decreasing", lineNo)
		}
		last = f.At
		plan.Faults = append(plan.Faults, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return plan, nil
}
