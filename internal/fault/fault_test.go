package fault

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

func process(e accel.Engine, n int) []sim.Word {
	var out []sim.Word
	for i := 0; i < n; i++ {
		out = e.Process(sim.Word(i), out)
	}
	return out
}

func TestWrapEnginesDropSample(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: DropSample, Stream: 0, Site: 0, Sample: 2}}}
	engines := p.WrapEngines(0, []accel.Engine{accel.Passthrough{}})
	out := process(engines[0], 5)
	if len(out) != 4 {
		t.Fatalf("output = %d words, want 4 (one dropped)", len(out))
	}
	// Sample index 2 is the missing one.
	want := []sim.Word{0, 1, 3, 4}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if engines[0].(*Engine).Dropped != 1 {
		t.Errorf("Dropped = %d", engines[0].(*Engine).Dropped)
	}
}

func TestWrapEnginesDropCount(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: DropSample, Stream: 0, Site: 0, Sample: 1, Count: 3}}}
	engines := p.WrapEngines(0, []accel.Engine{accel.Passthrough{}})
	out := process(engines[0], 6)
	if len(out) != 3 {
		t.Fatalf("output = %d words, want 3 (three dropped)", len(out))
	}
}

func TestWrapEnginesCorruptSample(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: CorruptSample, Stream: 0, Site: 0, Sample: 1, Mask: 0xFF}}}
	engines := p.WrapEngines(0, []accel.Engine{accel.Passthrough{}})
	out := process(engines[0], 3)
	if len(out) != 3 {
		t.Fatalf("corruption changed word count: %d", len(out))
	}
	if out[1] != 1^0xFF {
		t.Errorf("corrupted word = %#x, want %#x", out[1], 1^0xFF)
	}
	if out[0] != 0 || out[2] != 2 {
		t.Errorf("untargeted words touched: %v", out)
	}
}

func TestWrapEnginesStickEngine(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: StickEngine, Stream: 0, Site: 0, Sample: 3}}}
	engines := p.WrapEngines(0, []accel.Engine{accel.Passthrough{}})
	out := process(engines[0], 10)
	if len(out) != 3 {
		t.Fatalf("stuck engine emitted %d words, want 3", len(out))
	}
}

func TestWrapEnginesTargetsOnlyMatchingStreamAndSite(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: DropSample, Stream: 1, Site: 1, Sample: 0}}}
	// Stream 0 untouched: engines returned unwrapped.
	for site, e := range p.WrapEngines(0, []accel.Engine{accel.Passthrough{}, accel.Passthrough{}}) {
		if _, wrapped := e.(*Engine); wrapped {
			t.Errorf("stream 0 site %d wrapped without a targeting fault", site)
		}
	}
	// Stream 1: only site 1 wrapped.
	engines := p.WrapEngines(1, []accel.Engine{accel.Passthrough{}, accel.Passthrough{}})
	if _, wrapped := engines[0].(*Engine); wrapped {
		t.Error("site 0 wrapped")
	}
	if _, wrapped := engines[1].(*Engine); !wrapped {
		t.Error("site 1 not wrapped")
	}
	if !p.EngineFaults(1) || p.EngineFaults(0) {
		t.Error("EngineFaults stream targeting wrong")
	}
}

// TestWrapperCounterSurvivesStateRestore is the retry-semantics contract: a
// block retry restores the engine's block-start state, but the fault
// wrapper's absolute sample counter must NOT rewind with it — a transient
// fault already consumed stays consumed, so the replay passes.
func TestWrapperCounterSurvivesStateRestore(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: DropSample, Stream: 0, Site: 0, Sample: 2}}}
	e := p.WrapEngines(0, []accel.Engine{&accel.Gain{}})[0]
	snap := e.SaveState()
	if out := process(e, 4); len(out) != 3 {
		t.Fatalf("first attempt emitted %d, want 3", len(out))
	}
	// Abort-and-retry: restore block-start engine state, replay the block.
	if err := e.LoadState(snap); err != nil {
		t.Fatal(err)
	}
	if out := process(e, 4); len(out) != 4 {
		t.Fatalf("replay emitted %d, want 4 (transient fault must not refire)", len(out))
	}
}

func TestIdleDropper(t *testing.T) {
	p := &Plan{Faults: []Fault{{Kind: LoseIdle, Stream: 1, Block: 2}}}
	drop := p.IdleDropper()
	if drop == nil {
		t.Fatal("IdleDropper = nil with a LoseIdle fault")
	}
	if drop(0, 2) || drop(1, 1) {
		t.Error("dropped a non-matching notification")
	}
	if !drop(1, 2) {
		t.Error("matching notification not dropped")
	}
	if drop(1, 2) {
		t.Error("budget (1) exceeded: second matching notification dropped")
	}
	if (&Plan{}).IdleDropper() != nil {
		t.Error("IdleDropper != nil on an empty plan")
	}
}

func TestArmWedgesLink(t *testing.T) {
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := sim.NewQueue("dst", 4)
	l := accel.NewLink("l", k, net, 0, 1, 1, 1, dst)
	p := &Plan{Faults: []Fault{{Kind: WedgeLink, Site: 0, At: 10, Duration: 20}}}
	if err := p.ArmWedges(k, []*accel.Link{l}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run(15)
	if !l.Wedged() {
		t.Error("link not wedged at t=15")
	}
	k.Run(40)
	if l.Wedged() {
		t.Error("link still wedged at t=40")
	}
}

func TestArmWedgesNode(t *testing.T) {
	k := sim.NewKernel()
	r, err := ring.New(k, ring.Config{Name: "r", Nodes: 3, HopLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Node(1).Bind(1, func(ring.Message) {})
	p := &Plan{Faults: []Fault{{Kind: WedgeNode, Site: 0, At: 5, Duration: 10}}}
	if err := p.ArmWedges(k, nil, r); err != nil {
		t.Fatal(err)
	}
	k.Run(8)
	if r.Node(0).TrySend(1, 1, 1) {
		t.Error("wedged node accepted a send at t=8")
	}
	k.Run(30)
	if !r.Node(0).TrySend(1, 1, 2) {
		t.Error("node still refusing at t=30")
	}
}

func TestArmWedgesValidation(t *testing.T) {
	k := sim.NewKernel()
	if err := (&Plan{Faults: []Fault{{Kind: WedgeLink, Site: 3}}}).ArmWedges(k, nil, nil); err == nil {
		t.Error("out-of-range link site accepted")
	}
	if err := (&Plan{Faults: []Fault{{Kind: WedgeNode, Site: 0}}}).ArmWedges(k, nil, nil); err == nil {
		t.Error("wedge-node without a ring accepted")
	}
	r, _ := ring.New(k, ring.Config{Name: "r", Nodes: 2, HopLatency: 1})
	if err := (&Plan{Faults: []Fault{{Kind: WedgeNode, Site: 9}}}).ArmWedges(k, nil, r); err == nil {
		t.Error("out-of-range node site accepted")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{DropSample, CorruptSample, StickEngine, WedgeLink, WedgeNode, LoseIdle}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Errorf("kind %d string %q", k, s)
		}
		seen[s] = true
	}
}
