package fault

// Fuzz harness for the fault-campaign script parser: arbitrary input must
// produce an error or a well-formed plan — never a panic. Run continuously
// with `go test -fuzz=FuzzParseScript ./internal/fault/`; CI runs a short
// smoke budget on every push.

import (
	"strings"
	"testing"
)

func FuzzParseScript(f *testing.F) {
	// Seed corpus: every fault kind, comments, hex masks, durations —
	// and the malformed shapes the parser must reject gracefully.
	for _, seed := range []string{
		"",
		"# comment only\n",
		"5000 wedge-link site=0\n",
		"5000 wedge-link site=0 dur=1500\n",
		"200 wedge-node site=1\n",
		"0 stick-engine stream=0 site=0 sample=24\n",
		"10 drop-sample stream=1 site=0 sample=7 count=2\n",
		"10 corrupt-sample stream=2 site=0 sample=3 mask=0xff\n",
		"300 lose-idle stream=0 block=8 count=3\n",
		"1 wedge-link site=0\n2 wedge-node site=0\n3 lose-idle stream=1\n",
		"# full campaign\n100 stick-engine stream=0 site=0 sample=4\n900 wedge-link site=0 dur=200\n",
		// Malformed: each must error, not panic.
		"notanumber wedge-link site=0\n",
		"5 unknown-kind site=0\n",
		"5 wedge-link\n",
		"5 stick-engine site=0\n",
		"5 drop-sample stream=0\n",
		"5 wedge-link site=-1\n",
		"9 wedge-link site=0\n3 wedge-link site=0\n", // decreasing times
		"5 corrupt-sample stream=0 site=0 mask=zzz\n",
		"5 lose-idle stream=0 bogus=1\n",
		"5 wedge-link site=0 dur=\n",
		"\x00\x01\x02",
		strings.Repeat("5 wedge-link site=0\n", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		plan, err := ParseScript(text)
		if err != nil {
			if plan != nil {
				t.Fatal("non-nil plan returned alongside an error")
			}
			return
		}
		// A parsed plan must be internally consistent: normalized fields
		// and non-decreasing activation times.
		last := int64(-1)
		for _, ft := range plan.Faults {
			if int64(ft.At) < last {
				t.Fatalf("fault times decrease: %d after %d", ft.At, last)
			}
			last = int64(ft.At)
			if ft.Stream < 0 || ft.Site < 0 {
				t.Fatalf("unnormalized fault: %+v", ft)
			}
			if ft.Kind.String() == "" {
				t.Fatalf("unknown kind survived parsing: %+v", ft)
			}
		}
	})
}
