package fault

import (
	"fmt"

	"accelshare/internal/sim"
)

// DoctorConfig parameterises the wedged-chain diagnosis. A single stream
// stalling repeatedly is that stream's problem (retry, then quarantine —
// PR 1's recovery ladder handles it); stalls spread across DISTINCT streams
// inside one observation window mean the chain itself — a tile, a link, the
// ring segment — is sick, and per-stream recovery only burns retry budget.
type DoctorConfig struct {
	// Window is the sliding observation window in cycles.
	Window sim.Time
	// StallLimit is the number of stalls inside the window that triggers a
	// verdict (minimum 1).
	StallLimit int
	// DistinctStreams is how many different streams must be represented
	// among the window's stalls (default 1: any StallLimit stalls convict).
	// Raising it avoids convicting the chain for one stream's stuck engine.
	DistinctStreams int
}

// Verdict is the doctor's one-shot diagnosis: the chain is wedged.
type Verdict struct {
	// At is the simulated time of the convicting stall.
	At sim.Time
	// Reason is a deterministic human-readable summary.
	Reason string
	// Streams are the distinct streams that stalled inside the window, in
	// first-stall order.
	Streams []int
}

// Doctor watches the stall feed from a gateway pair (wired through
// Pair.SetStallObserver) and renders a wedged-chain verdict at most once.
// It is the trigger half of chain failover; what happens on a verdict is
// the FailoverController's business.
type Doctor struct {
	k       *sim.Kernel
	cfg     DoctorConfig
	verdict func(Verdict)

	stalls  []stallEvent
	decided bool
}

type stallEvent struct {
	at     sim.Time
	stream int
}

// NewDoctor validates the configuration and returns a Doctor delivering at
// most one Verdict to onVerdict.
func NewDoctor(k *sim.Kernel, cfg DoctorConfig, onVerdict func(Verdict)) (*Doctor, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("fault doctor: window must be positive")
	}
	if cfg.StallLimit < 1 {
		return nil, fmt.Errorf("fault doctor: stall limit must be >= 1")
	}
	if cfg.DistinctStreams < 1 {
		cfg.DistinctStreams = 1
	}
	if onVerdict == nil {
		return nil, fmt.Errorf("fault doctor: nil verdict callback")
	}
	return &Doctor{k: k, cfg: cfg, verdict: onVerdict}, nil
}

// NoteStall feeds one watchdog stall into the window. Call it from the
// pair's stall observer. The first time the window accumulates StallLimit
// stalls across at least DistinctStreams streams, the verdict fires —
// synchronously, so the observer's caller (the gateway's stall handler) sees
// the pair already frozen and skips its own flush.
func (d *Doctor) NoteStall(stream int) {
	if d.decided {
		return
	}
	now := d.k.Now()
	d.stalls = append(d.stalls, stallEvent{at: now, stream: stream})
	// Prune events older than the window.
	cut := 0
	for cut < len(d.stalls) && now-d.stalls[cut].at > d.cfg.Window {
		cut++
	}
	d.stalls = d.stalls[cut:]
	if len(d.stalls) < d.cfg.StallLimit {
		return
	}
	var distinct []int
	seen := map[int]bool{}
	for _, ev := range d.stalls {
		if !seen[ev.stream] {
			seen[ev.stream] = true
			distinct = append(distinct, ev.stream)
		}
	}
	if len(distinct) < d.cfg.DistinctStreams {
		return
	}
	d.decided = true
	d.verdict(Verdict{
		At: now,
		Reason: fmt.Sprintf("%d stalls across %d streams within %d cycles",
			len(d.stalls), len(distinct), d.cfg.Window),
		Streams: distinct,
	})
}

// Decided reports whether the verdict already fired.
func (d *Doctor) Decided() bool { return d.decided }
