package fault

import (
	"testing"

	"accelshare/internal/sim"
)

func TestDoctorConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	cb := func(Verdict) {}
	if _, err := NewDoctor(k, DoctorConfig{Window: 0, StallLimit: 1}, cb); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewDoctor(k, DoctorConfig{Window: 100, StallLimit: 0}, cb); err == nil {
		t.Error("zero stall limit accepted")
	}
	if _, err := NewDoctor(k, DoctorConfig{Window: 100, StallLimit: 1}, nil); err == nil {
		t.Error("nil verdict callback accepted")
	}
}

// TestDoctorConvictsAcrossStreams: the wedged-chain signature is stalls
// SPREADING — the verdict needs both the stall count and the distinct-stream
// quorum inside the window, and it latches exactly once.
func TestDoctorConvictsAcrossStreams(t *testing.T) {
	k := sim.NewKernel()
	var verdicts []Verdict
	d, err := NewDoctor(k, DoctorConfig{Window: 1000, StallLimit: 3, DistinctStreams: 2},
		func(v Verdict) { verdicts = append(verdicts, v) })
	if err != nil {
		t.Fatal(err)
	}
	at := func(ts sim.Time, stream int) {
		k.ScheduleAt(ts, func() { d.NoteStall(stream) })
	}
	at(100, 0)
	at(200, 0)
	at(300, 0) // 3 stalls, 1 stream: count met, quorum not
	at(400, 1) // 4 stalls, 2 streams: verdict
	at(500, 2) // after the latch: ignored
	k.RunAll()
	if len(verdicts) != 1 {
		t.Fatalf("%d verdicts, want exactly 1 (latched)", len(verdicts))
	}
	v := verdicts[0]
	if v.At != 400 {
		t.Errorf("verdict at %d, want 400", v.At)
	}
	if len(v.Streams) != 2 || v.Streams[0] != 0 || v.Streams[1] != 1 {
		t.Errorf("verdict streams %v, want [0 1] in first-stall order", v.Streams)
	}
	if !d.Decided() {
		t.Error("doctor not latched")
	}
}

// TestDoctorWindowPrunes: stalls older than the window don't count — a slow
// trickle of per-stream retries never convicts the chain.
func TestDoctorWindowPrunes(t *testing.T) {
	k := sim.NewKernel()
	fired := false
	d, err := NewDoctor(k, DoctorConfig{Window: 500, StallLimit: 3, DistinctStreams: 1},
		func(Verdict) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range []sim.Time{100, 900, 1700, 2500} {
		k.ScheduleAt(ts, func() { d.NoteStall(i % 2) })
	}
	k.RunAll()
	if fired {
		t.Fatal("trickle of isolated stalls convicted the chain")
	}
	// Three stalls inside one window do convict.
	for _, ts := range []sim.Time{3000, 3100, 3200} {
		k.ScheduleAt(ts, func() { d.NoteStall(0) })
	}
	k.RunAll()
	if !fired {
		t.Fatal("burst within the window not convicted")
	}
}

// TestParseScriptFields pins the happy-path parse: kinds, defaults and
// key=value fields land where the fault engine expects them.
func TestParseScriptFields(t *testing.T) {
	plan, err := ParseScript(`
# campaign
100 stick-engine stream=1 site=0 sample=24
900 wedge-link site=0 dur=1500
900 wedge-node site=2
2000 drop-sample stream=0 site=0 sample=7 count=2
3000 corrupt-sample stream=2 site=0 sample=3 mask=0xff
4000 lose-idle stream=0 block=8 count=3
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Faults) != 6 {
		t.Fatalf("%d faults parsed, want 6", len(plan.Faults))
	}
	f := plan.Faults[0]
	if f.At != 100 || f.Kind != StickEngine || f.Stream != 1 || f.Site != 0 || f.Sample != 24 {
		t.Errorf("stick-engine parsed as %+v", f)
	}
	f = plan.Faults[1]
	if f.Kind != WedgeLink || f.Site != 0 || f.Duration != 1500 {
		t.Errorf("wedge-link parsed as %+v", f)
	}
	f = plan.Faults[4]
	if f.Kind != CorruptSample || f.Mask != 0xff {
		t.Errorf("corrupt-sample parsed as %+v", f)
	}
	f = plan.Faults[5]
	if f.Kind != LoseIdle || f.Block != 8 || f.Count != 3 {
		t.Errorf("lose-idle parsed as %+v", f)
	}
}
