package fault

import (
	"testing"

	"accelshare/internal/sim"
)

func TestBackoffValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
		ok   bool
	}{
		{"valid", Backoff{Base: 200, Factor: 2, Cap: 3200, Limit: 8}, true},
		{"constant delay", Backoff{Base: 100, Factor: 1, Limit: 3}, true},
		{"uncapped", Backoff{Base: 1, Factor: 2, Limit: 4}, true},
		{"zero base", Backoff{Factor: 2, Limit: 3}, false},
		{"zero limit", Backoff{Base: 200, Factor: 2}, false},
	}
	for _, c := range cases {
		if err := c.b.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 200, Factor: 2, Cap: 3_200, Limit: 8}
	want := []sim.Time{200, 400, 800, 1_600, 3_200, 3_200, 3_200, 3_200}
	for i, w := range want {
		d, ok := b.Delay(i)
		if !ok || d != w {
			t.Errorf("Delay(%d) = %d,%v, want %d,true", i, d, ok, w)
		}
	}
	// Attempts past the budget are refused, as are nonsense attempts.
	if _, ok := b.Delay(8); ok {
		t.Error("Delay(Limit) allowed")
	}
	if _, ok := b.Delay(-1); ok {
		t.Error("Delay(-1) allowed")
	}
}

func TestBackoffConstantFactor(t *testing.T) {
	b := Backoff{Base: 150, Factor: 1, Limit: 3}
	for i := 0; i < 3; i++ {
		if d, ok := b.Delay(i); !ok || d != 150 {
			t.Errorf("Delay(%d) = %d,%v, want 150,true", i, d, ok)
		}
	}
}

// TestBackoffOverflowGuard drives the geometric growth past the sim.Time
// range: the delay must saturate (at Cap when set, at a huge-but-usable
// value otherwise) rather than wrap to something tiny or negative.
func TestBackoffOverflowGuard(t *testing.T) {
	capped := Backoff{Base: 1 << 40, Factor: 1 << 30, Cap: 1 << 50, Limit: 10}
	for i := 0; i < 10; i++ {
		d, ok := capped.Delay(i)
		if !ok || d <= 0 || d > 1<<50 {
			t.Fatalf("capped Delay(%d) = %d,%v", i, d, ok)
		}
	}
	uncapped := Backoff{Base: 1 << 40, Factor: 1 << 30, Limit: 10}
	prev := sim.Time(0)
	for i := 0; i < 10; i++ {
		d, ok := uncapped.Delay(i)
		if !ok || d <= 0 {
			t.Fatalf("uncapped Delay(%d) = %d,%v", i, d, ok)
		}
		if d < prev {
			t.Fatalf("uncapped Delay(%d) = %d shrank below %d", i, d, prev)
		}
		prev = d
	}
}

func TestBackoffRetryScheduling(t *testing.T) {
	k := sim.NewKernel()
	b := Backoff{Base: 200, Factor: 2, Cap: 3_200, Limit: 3}
	var fired []sim.Time
	attempt := 0
	var again func()
	again = func() {
		fired = append(fired, k.Now())
		attempt++
		b.Retry(k, attempt, again)
	}
	if !b.Retry(k, attempt, again) {
		t.Fatal("first retry refused")
	}
	k.Run(100_000)
	// Budget of 3: retries at 200, 200+400, 200+400+800; the fourth attempt
	// is refused, so nothing fires after 1400.
	want := []sim.Time{200, 600, 1_400}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if b.Retry(k, attempt, again) {
		t.Error("retry past the budget accepted")
	}
}
