package fault

import (
	"fmt"

	"accelshare/internal/sim"
)

// Backoff is a bounded, deterministic retry schedule for control-plane
// operations: doctor-triggered migrations that find their target busy,
// readmission probes for shed streams, departures re-issued after a chain
// died mid-transition. Delays grow geometrically from Base by Factor per
// attempt, clamp at Cap, and the total number of retries is bounded by
// Limit — a control plane must never spin, and it must never wait forever.
//
// The schedule is a pure function of the attempt number: sim-clock only, no
// wall clock, no jitter, so two runs of the same campaign retry at exactly
// the same cycle. (The determinism analyzer enforces the no-wall-clock half
// of that claim over this package.)
type Backoff struct {
	// Base is the delay before the first retry (attempt 0); must be > 0.
	Base sim.Time
	// Factor multiplies the delay per subsequent attempt (values < 2 mean a
	// constant delay).
	Factor uint64
	// Cap clamps any single delay (0 = uncapped).
	Cap sim.Time
	// Limit is the retry budget: attempts numbered >= Limit are refused.
	Limit int
}

// Validate rejects schedules that could never fire or never stop.
func (b Backoff) Validate() error {
	if b.Base <= 0 {
		return fmt.Errorf("backoff: base delay must be positive")
	}
	if b.Limit <= 0 {
		return fmt.Errorf("backoff: retry limit must be positive")
	}
	return nil
}

// Delay returns the delay before retry `attempt` (0-based) and whether the
// retry budget still allows that attempt.
func (b Backoff) Delay(attempt int) (sim.Time, bool) {
	if attempt < 0 || attempt >= b.Limit || b.Base <= 0 {
		return 0, false
	}
	d := b.Base
	f := sim.Time(b.Factor)
	if f >= 2 {
		for i := 0; i < attempt; i++ {
			next := d * f
			if next/f != d {
				// Overflow: the cap (or "effectively forever") is reached.
				d = next // wrapped; fall through to the cap clamp below
				if b.Cap > 0 {
					d = b.Cap
				} else {
					d = ^sim.Time(0) / 2
				}
				break
			}
			d = next
			if b.Cap > 0 && d >= b.Cap {
				d = b.Cap
				break
			}
		}
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	return d, true
}

// Retry schedules fn after attempt's backoff delay on k. It returns false —
// scheduling nothing — once the budget is exhausted: the caller must then
// degrade (shed, park, report) instead of trying again.
func (b Backoff) Retry(k *sim.Kernel, attempt int, fn func()) bool {
	d, ok := b.Delay(attempt)
	if !ok {
		return false
	}
	k.Schedule(d, fn)
	return true
}
