// Package fault provides deterministic, schedulable fault injection for
// the simulated MPSoC: a Plan enumerates faults (sample drops, datapath
// corruption, a stuck engine, wedged links or ring NIs, lost pipeline-idle
// notifications), and helpers arm them against the platform's components.
//
// Everything is deterministic: faults trigger on absolute sample indices,
// block numbers or simulated onset times — never on wall clock or
// randomness — so a fault campaign is byte-identical across runs.
//
// The package deliberately does not import the gateway: lost-idle faults
// are delivered through the gateway's plain DropIdle hook (IdleDropper
// returns a compatible closure), which keeps the dependency graph acyclic.
//
// In the recovery ladder this package is the adversary: its faults exercise
// detection (the drain watchdog derived from Eq. 2's flush allowance),
// block retry and checkpointed resume (gateway.Recovery), stream
// quarantine, and whole-chain failover (the Doctor's wedged-chain verdict
// feeding mpsoc.FailoverController). The Engine wrapper's lifetime sample
// counter is deliberately NOT part of SaveState: a transient fault that has
// fired stays fired, so an engine-state snapshot taken at a checkpoint
// never re-arms it and a replay past the fault position processes the same
// inputs cleanly — which is exactly what makes checkpointed retry converge.
package fault

import (
	"fmt"

	"accelshare/internal/accel"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind int

// Fault kinds.
const (
	// DropSample makes the targeted engine swallow Count samples starting
	// at absolute sample index Sample — the "sample lost inside an
	// accelerator" fault that breaks the exit gateway's block accounting.
	DropSample Kind = iota
	// CorruptSample XORs Mask into Count input words starting at absolute
	// sample index Sample — a silent data error: throughput and block
	// accounting are unaffected, so the watchdog must NOT fire.
	CorruptSample
	// StickEngine wedges the targeted engine permanently from absolute
	// sample index Sample on: every later sample is swallowed, the block
	// never drains, and retries replay into the same wall — the
	// quarantine-driving fault.
	StickEngine
	// WedgeLink freezes a credit-controlled link (Site indexes the chain:
	// 0 = entry-gateway link, i = the link after tile i-1) at time At for
	// Duration cycles (0 = permanently).
	WedgeLink
	// WedgeNode freezes a ring node's injection side (Site = node index)
	// at time At for Duration cycles (0 = permanently).
	WedgeNode
	// LoseIdle swallows the pipeline-idle notification for the targeted
	// stream's block number Block, Count times (so a retried block's
	// re-notification gets through once the budget is spent).
	LoseIdle
)

func (k Kind) String() string {
	switch k {
	case DropSample:
		return "drop-sample"
	case CorruptSample:
		return "corrupt-sample"
	case StickEngine:
		return "stick-engine"
	case WedgeLink:
		return "wedge-link"
	case WedgeNode:
		return "wedge-node"
	case LoseIdle:
		return "lose-idle"
	}
	return "?"
}

// Fault is one injectable fault. Which fields matter depends on Kind; the
// zero value of the rest is ignored.
type Fault struct {
	Kind Kind
	// Stream targets engine faults and LoseIdle at one stream's engines.
	Stream int
	// Site is the tile index (engine faults), chain-link index (WedgeLink)
	// or ring-node index (WedgeNode).
	Site int
	// Sample is the absolute lifetime sample index (per engine) at which
	// an engine fault first hits. Absolute means retries replay PAST a
	// transient fault: the wrapper's counter is not part of the engine
	// state, so a replayed sample has a new index.
	Sample uint64
	// Count is how many samples (DropSample/CorruptSample) or idle
	// notifications (LoseIdle) are affected; 0 means 1.
	Count int
	// Block is the per-stream block number a LoseIdle fault targets.
	Block uint64
	// At is the simulated onset time of a wedge fault.
	At sim.Time
	// Duration is the wedge length; 0 wedges permanently.
	Duration sim.Time
	// Mask is XORed into corrupted words; 0 means 1 (flip the LSB).
	Mask sim.Word
}

func (f Fault) count() int {
	if f.Count <= 0 {
		return 1
	}
	return f.Count
}

func (f Fault) mask() sim.Word {
	if f.Mask == 0 {
		return 1
	}
	return f.Mask
}

// Plan is a deterministic fault schedule for one simulation run.
type Plan struct {
	Faults []Fault
}

// engineFault is one armed engine-level fault with its remaining budget.
type engineFault struct {
	f    Fault
	left int
}

// Engine wraps an inner accel.Engine and applies the plan's engine-level
// faults by absolute sample index. The lifetime counter is deliberately
// excluded from SaveState/LoadState: it is a property of the (faulty)
// hardware datapath, not of the stream's state, so an abort-and-retry
// replays the same words under NEW indices and recovers from transient
// faults — while StickEngine keeps biting and defeats every retry.
type Engine struct {
	Inner accel.Engine

	seen   uint64
	stuck  bool
	faults []*engineFault

	// Dropped/Corrupted count injected fault activations for diagnostics.
	Dropped   uint64
	Corrupted uint64
}

// Process applies due faults, then delegates to the inner engine.
func (e *Engine) Process(w sim.Word, out []sim.Word) []sim.Word {
	idx := e.seen
	e.seen++
	if e.stuck {
		e.Dropped++
		return out
	}
	for _, af := range e.faults {
		if idx < af.f.Sample {
			continue
		}
		switch af.f.Kind {
		case StickEngine:
			e.stuck = true
			e.Dropped++
			return out
		case DropSample:
			if af.left > 0 {
				af.left--
				e.Dropped++
				return out
			}
		case CorruptSample:
			if af.left > 0 {
				af.left--
				e.Corrupted++
				w ^= af.f.mask()
			}
		}
	}
	return e.Inner.Process(w, out)
}

// SaveState serialises the inner engine only (see type comment).
func (e *Engine) SaveState() []uint64 { return e.Inner.SaveState() }

// LoadState restores the inner engine only.
func (e *Engine) LoadState(s []uint64) error { return e.Inner.LoadState(s) }

// StateWords reports the inner engine's footprint.
func (e *Engine) StateWords() int { return e.Inner.StateWords() }

// WrapEngines wraps a stream's engine chain with the plan's engine-level
// faults for that stream. Engines without a targeting fault are returned
// unwrapped, so a fault-free stream is bit-identical to a plan-free run.
func (p *Plan) WrapEngines(stream int, engines []accel.Engine) []accel.Engine {
	wrapped := make([]accel.Engine, len(engines))
	for site, inner := range engines {
		var afs []*engineFault
		for _, f := range p.Faults {
			switch f.Kind {
			case DropSample, CorruptSample, StickEngine:
				if f.Stream == stream && f.Site == site {
					afs = append(afs, &engineFault{f: f, left: f.count()})
				}
			}
		}
		if len(afs) == 0 {
			wrapped[site] = inner
			continue
		}
		wrapped[site] = &Engine{Inner: inner, faults: afs}
	}
	return wrapped
}

// IdleDropper returns a gateway-compatible DropIdle hook honouring the
// plan's LoseIdle faults, or nil when the plan has none (so a fault-free
// gateway keeps its strict spurious-notification panic).
func (p *Plan) IdleDropper() func(stream int, block uint64) bool {
	var afs []*engineFault
	for _, f := range p.Faults {
		if f.Kind == LoseIdle {
			afs = append(afs, &engineFault{f: f, left: f.count()})
		}
	}
	if len(afs) == 0 {
		return nil
	}
	return func(stream int, block uint64) bool {
		for _, af := range afs {
			if af.f.Stream == stream && af.f.Block == block && af.left > 0 {
				af.left--
				return true
			}
		}
		return false
	}
}

// ArmWedges schedules the plan's wedge faults on the kernel. links is the
// chain's credit-controlled links in order (0 = entry-gateway link, i =
// the link after tile i-1); r is the data ring for WedgeNode faults (may
// be nil when the plan has none).
func (p *Plan) ArmWedges(k *sim.Kernel, links []*accel.Link, r *ring.Ring) error {
	for _, f := range p.Faults {
		f := f
		delay := f.At - k.Now()
		if delay < 0 {
			delay = 0
		}
		switch f.Kind {
		case WedgeLink:
			if f.Site < 0 || f.Site >= len(links) {
				return fmt.Errorf("fault: wedge-link site %d out of range (chain has %d links)", f.Site, len(links))
			}
			l := links[f.Site]
			k.Schedule(delay, func() { l.WedgeFor(f.Duration) })
		case WedgeNode:
			if r == nil {
				return fmt.Errorf("fault: wedge-node fault but no wedgeable ring (cycle-true transport?)")
			}
			if f.Site < 0 || f.Site >= r.Nodes() {
				return fmt.Errorf("fault: wedge-node site %d out of range (%d nodes)", f.Site, r.Nodes())
			}
			node := f.Site
			k.Schedule(delay, func() { r.WedgeNode(node, f.Duration) })
		}
	}
	return nil
}

// EngineFaults reports whether the plan has engine-level faults for the
// given stream (used by platform builders to decide whether wrapping is
// needed).
func (p *Plan) EngineFaults(stream int) bool {
	for _, f := range p.Faults {
		switch f.Kind {
		case DropSample, CorruptSample, StickEngine:
			if f.Stream == stream {
				return true
			}
		}
	}
	return false
}
