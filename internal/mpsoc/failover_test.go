package mpsoc

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/conformance"
	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// failoverPlatform builds the two-chain failover bed: the faultPlatform
// chain (ε=15, ρA=1, δ=1, Rs=50, η=16 → τ̂=320) as primary plus an empty
// standby pair, sources feeding every stream and sinks collecting outputs so
// tests can verify sample-exact continuity across a migration.
func failoverPlatform(t *testing.T, plan *fault.Plan, nStreams int, periods []int64, standbyCost sim.Time) (*MultiSystem, *core.System) {
	return failoverPlatformRec(t, plan, nStreams, periods, standbyCost,
		gateway.Recovery{Enabled: true, RetryLimit: 2})
}

// failoverPlatformRec is failoverPlatform with an explicit recovery config
// (both chains), for the checkpointed variants.
func failoverPlatformRec(t *testing.T, plan *fault.Plan, nStreams int, periods []int64, standbyCost sim.Time, rec gateway.Recovery) (*MultiSystem, *core.System) {
	t.Helper()
	var specs []StreamSpec
	model := &core.System{
		Chain: core.Chain{
			Name: "primary", AccelCosts: []uint64{1},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		},
		ClockHz: 1,
	}
	for i := 0; i < nStreams; i++ {
		name := fmt.Sprintf("s%d", i)
		specs = append(specs, StreamSpec{
			Name: name, Block: 16, Decimation: 1, Reconfig: 50,
			InCapacity: 128, OutCapacity: 64,
			SourcePeriod:   sim.Time(periods[i]),
			Engines:        []accel.Engine{&accel.Gain{}},
			CollectOutputs: true,
		})
		model.Streams = append(model.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, periods[i]), Reconfig: 50, Block: 16,
		})
	}
	ms, err := BuildMulti(MultiConfig{
		Name:           "fo",
		HopLatency:     1,
		RecordActivity: true,
		Chains: []ChainSpec{
			{
				Name: "primary", EntryCost: 15, ExitCost: 1, Mode: gateway.ReconfigFixed,
				Accels:  []AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
				Streams: specs, DrainTimeout: 600,
				Recovery: rec,
				Faults:   plan, RecordTurnarounds: true,
			},
			{
				Name: "standby", EntryCost: 15, ExitCost: 1, Mode: gateway.ReconfigFixed,
				Accels:  []AccelSpec{{Name: "acc-b", Cost: standbyCost, NICapacity: 2}},
				Standby: true, DrainTimeout: 600,
				Recovery:          rec,
				RecordTurnarounds: true,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms, model
}

// checkContiguous verifies the identity-engine output sequence 0,1,2,... —
// sample-exact continuity across the migration.
func checkContiguous(t *testing.T, ch *Chain) {
	t.Helper()
	for _, st := range ch.Strs {
		for k, w := range st.Outputs {
			if w != sim.Word(k) {
				t.Fatalf("%s output[%d] = %d: lost or duplicated sample across failover", st.Spec.Name, k, w)
			}
		}
	}
}

// failoverConformance checks the post-migration trace of every live stream
// against the ACTIVE chain's bounds (standby cost, post-failover blocks).
// When the chains checkpoint, k/ckCost select the adjusted Eq. 2 bounds and
// the replay check enforces retry work ≤ k per retry.
func failoverConformance(t *testing.T, model *core.System, ch *Chain, standbyCost uint64, after sim.Time, minBlocks int, k int64, ckCost uint64) {
	t.Helper()
	snaps := ch.Pair.Snapshot()
	live := &core.System{
		Chain:   model.Chain,
		ClockHz: model.ClockHz,
	}
	live.Chain.AccelCosts = []uint64{standbyCost}
	var streams []*gateway.Stream
	for i, sn := range snaps {
		if sn.Quarantined || sn.Suspended {
			continue
		}
		for _, msr := range model.Streams {
			if msr.Name == sn.Name {
				msr.Block = sn.Block
				live.Streams = append(live.Streams, msr)
				break
			}
		}
		streams = append(streams, ch.Strs[i].GW)
	}
	bounds, err := conformance.FromModelCheckpointed(live, k, ckCost)
	if err != nil {
		t.Fatal(err)
	}
	res := conformance.FromStreams(bounds, streams, conformance.Options{
		After: after, SkipRetried: true, MinBlocks: minBlocks, ReplayBound: k,
	})
	if err := res.Err(); err != nil {
		t.Error(err)
	}
	if res.Checked == 0 {
		t.Error("conformance checked zero blocks")
	}
}

// TestChainFailover is the tentpole acceptance scenario: a permanent entry
// wedge at t=5000 stalls the chain, the doctor convicts it, and the
// controller migrates all three streams to the standby. Acceptance:
// the measured failover cost stays within its bound, no stream loses or
// duplicates a single sample, and the survivors meet Eq. 2/4/5 on the
// standby for the rest of the horizon.
func TestChainFailover(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.WedgeLink, Site: 0, At: 5_000},
	}}
	ms, model := failoverPlatform(t, plan, 3, []int64{75, 75, 75}, 1)
	fc, err := NewFailover(ms, FailoverConfig{
		Primary: 0, Standby: 1, Model: model, PerSlotCost: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Arm(fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1}); err != nil {
		t.Fatal(err)
	}
	ms.Run(120_000)

	rec := fc.Record()
	if rec == nil {
		t.Fatal("failover never completed")
	}
	if rec.MeasuredCycles > rec.BoundCycles {
		t.Fatalf("failover cost %d cycles exceeds bound %d (max τ̂ + %d slots × bus)",
			rec.MeasuredCycles, rec.BoundCycles, len(rec.Names))
	}
	// τ̂=320 with 3 slots at bus cost 10 → bound 350; the settle clamp makes
	// the measured cost exactly meet it.
	if rec.BoundCycles != 350 {
		t.Errorf("bound = %d, want 350 = τ̂ 320 + 3×10", rec.BoundCycles)
	}
	if rec.ReplayWords == 0 {
		t.Error("wedge hit mid-block but no replay words migrated")
	}
	if !ms.Chains[0].Pair.Failed() {
		t.Error("primary not retired")
	}
	if got := len(ms.Chains[1].Strs); got != 3 {
		t.Fatalf("standby carries %d streams, want 3", got)
	}
	for _, sn := range ms.Chains[1].Pair.Snapshot() {
		if sn.Quarantined {
			t.Errorf("%s quarantined across the failover", sn.Name)
		}
	}
	for _, st := range ms.Chains[1].Strs {
		if st.Overflows != 0 {
			t.Errorf("%s overflowed %d samples", st.Spec.Name, st.Overflows)
		}
	}
	checkContiguous(t, ms.Chains[1])
	// One backlog-drain margin past the resume (the freeze+settle queue the
	// sources kept filling), then the single-token bounds must hold again.
	failoverConformance(t, model, ms.Chains[1], 1, rec.ResumedAt+8_000, 20, 0, 0)
}

// TestChainFailoverCheckpointed: the same wedge-convict-migrate sequence on
// a checkpointing chain. The migrated residue is the words since the last
// committed checkpoint — bounded by K, not by η — the failover bound uses
// the adjusted Eq. 2 term τ̂(K), and the post-migration trace must conform
// to the adjusted bounds with replay work ≤ K per retry.
func TestChainFailoverCheckpointed(t *testing.T) {
	const K = 4
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.WedgeLink, Site: 0, At: 5_000},
	}}
	rec := gateway.Recovery{
		Enabled: true, RetryLimit: 2,
		Checkpoint: K, CheckpointCost: 5, ValueExact: true,
	}
	ms, model := failoverPlatformRec(t, plan, 3, []int64{75, 75, 75}, 1, rec)
	fc, err := NewFailover(ms, FailoverConfig{
		Primary: 0, Standby: 1, Model: model, PerSlotCost: 10,
		Checkpoint: K, CheckpointCost: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Arm(fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1}); err != nil {
		t.Fatal(err)
	}
	ms.Run(120_000)

	frec := fc.Record()
	if frec == nil {
		t.Fatal("failover never completed")
	}
	if frec.MeasuredCycles > frec.BoundCycles {
		t.Fatalf("failover cost %d cycles exceeds bound %d", frec.MeasuredCycles, frec.BoundCycles)
	}
	// τ̂(K=4) for η=16: 50 + (16 + 2·4)·15 + 3·5 = 425; + 3 slots × 10 bus.
	if frec.BoundCycles != 455 {
		t.Errorf("bound = %d, want 455 = adjusted τ̂ 425 + 3×10", frec.BoundCycles)
	}
	// The whole point: the in-flight residue is a sub-block, not the block.
	if frec.ReplayWords > K {
		t.Fatalf("migrated %d replay words, checkpointing bounds the residue by K=%d", frec.ReplayWords, K)
	}
	if got := len(ms.Chains[1].Strs); got != 3 {
		t.Fatalf("standby carries %d streams, want 3", got)
	}
	for _, st := range ms.Chains[1].Strs {
		if st.Overflows != 0 {
			t.Errorf("%s overflowed %d samples", st.Spec.Name, st.Overflows)
		}
	}
	checkContiguous(t, ms.Chains[1])
	failoverConformance(t, model, ms.Chains[1], 1, frec.ResumedAt+8_000, 20, K, 5)
}

// TestFailoverTraceSpan: both pairs record the controller-level span and the
// trace package renders it as its own row.
func TestFailoverTraceSpan(t *testing.T) {
	ms, model := failoverPlatform(t, &fault.Plan{}, 2, []int64{80, 80}, 1)
	fc, err := NewFailover(ms, FailoverConfig{Primary: 0, Standby: 1, Model: model, PerSlotCost: 10})
	if err != nil {
		t.Fatal(err)
	}
	ms.K.ScheduleAt(10_000, func() { fc.Trigger("test") })
	ms.Run(30_000)
	rec := fc.Record()
	if rec == nil {
		t.Fatal("manual failover never completed")
	}
	found := 0
	for _, ch := range ms.Chains {
		for _, a := range ch.Pair.Activities {
			if a.Kind == gateway.ActFailover {
				if a.Start != rec.TriggeredAt || a.End != rec.ResumedAt {
					t.Errorf("failover span [%d,%d], record says [%d,%d]", a.Start, a.End, rec.TriggeredAt, rec.ResumedAt)
				}
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("failover span recorded on %d pairs, want both", found)
	}
}

// TestFailoverSweep is the property-based campaign: seeded random stream
// sets (count and rates) × fault plans (entry wedge, node wedge, none) ×
// triggers (doctor verdict or operator-scheduled). Every draw must satisfy
// the same properties the acceptance test checks — cost within bound,
// sample-exact continuity, post-migration bound conformance. A failure names
// its subtest seed, which replays the exact draw.
func TestFailoverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs many simulations")
	}
	const seeds = 8
	for s := int64(0); s < seeds; s++ {
		seed := 0x5EED + s
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nStreams := 2 + rng.Intn(3) // 2..4
			periods := make([]int64, nStreams)
			for i := range periods {
				// γ̂ for 4 streams is 1280; a block fills every 16·period, so
				// period ≥ 85 keeps every draw feasible with slack.
				periods[i] = 85 + int64(rng.Intn(40))
			}
			var plan fault.Plan
			var manualAt sim.Time
			faultAt := sim.Time(3_000 + rng.Intn(12_000))
			switch rng.Intn(3) {
			case 0:
				plan.Faults = []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: faultAt}}
			case 1:
				plan.Faults = []fault.Fault{{Kind: fault.WedgeNode, Site: 0, At: faultAt}}
			default:
				manualAt = faultAt // healthy chain, operator-initiated
			}
			ms, model := failoverPlatform(t, &plan, nStreams, periods, 1)
			fc, err := NewFailover(ms, FailoverConfig{
				Primary: 0, Standby: 1, Model: model, PerSlotCost: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if manualAt > 0 {
				ms.K.ScheduleAt(manualAt, func() { fc.Trigger("sweep operator") })
			} else {
				if _, err := fc.Arm(fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1}); err != nil {
					t.Fatal(err)
				}
			}
			ms.Run(100_000)

			rec := fc.Record()
			if rec == nil {
				t.Fatal("failover never completed")
			}
			if rec.MeasuredCycles > rec.BoundCycles {
				t.Fatalf("cost %d > bound %d", rec.MeasuredCycles, rec.BoundCycles)
			}
			if len(ms.Chains[1].Strs) != nStreams {
				t.Fatalf("standby carries %d streams, want %d", len(ms.Chains[1].Strs), nStreams)
			}
			for _, st := range ms.Chains[1].Strs {
				if st.Overflows != 0 {
					t.Errorf("%s overflowed %d samples", st.Spec.Name, st.Overflows)
				}
			}
			checkContiguous(t, ms.Chains[1])
			failoverConformance(t, model, ms.Chains[1], 1, rec.ResumedAt+8_000, 10, 0, 0)
		})
	}
}
