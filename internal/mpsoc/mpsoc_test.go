package mpsoc

import (
	"math/big"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// onePassthroughConfig: a single stream over one passthrough accelerator.
func onePassthroughConfig(block int64, total uint64) Config {
	return Config{
		Name:       "t",
		HopLatency: 1,
		EntryCost:  15,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		Accels:     []AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
		Streams: []StreamSpec{{
			Name:           "s0",
			Block:          block,
			Decimation:     1,
			Reconfig:       100,
			InCapacity:     int(3 * block),
			OutCapacity:    int(3 * block),
			Engines:        []accel.Engine{accel.Passthrough{}},
			TotalInputs:    total,
			CollectOutputs: true,
		}},
	}
}

func TestSingleStreamEndToEnd(t *testing.T) {
	sys, err := Build(onePassthroughConfig(8, 64))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	if got := sys.Collected(0); got != 64 {
		t.Fatalf("collected %d of 64", got)
	}
	for i, w := range sys.Strs[0].Outputs {
		if w != sim.Word(i) {
			t.Fatalf("output %d = %d (data corrupted)", i, w)
		}
	}
	rep := sys.Report()
	if rep.PerStream[0].Blocks != 8 {
		t.Errorf("blocks = %d, want 8", rep.PerStream[0].Blocks)
	}
	if rep.PerStream[0].Overflows != 0 {
		t.Errorf("overflows = %d", rep.PerStream[0].Overflows)
	}
}

func TestTwoStreamsSharingChainKeepSeparateState(t *testing.T) {
	// Two streams over one Gain accelerator with per-stream counters: the
	// context switches must preserve each stream's count exactly.
	mk := func(name string) StreamSpec {
		return StreamSpec{
			Name:           name,
			Block:          4,
			Decimation:     1,
			Reconfig:       50,
			InCapacity:     16,
			OutCapacity:    16,
			Engines:        []accel.Engine{&accel.Gain{Shift: 1}},
			TotalInputs:    32,
			CollectOutputs: true,
		}
	}
	cfg := Config{
		Name:       "share",
		HopLatency: 1,
		EntryCost:  3,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		Accels:     []AccelSpec{{Name: "gain", Cost: 1, NICapacity: 2}},
		Streams:    []StreamSpec{mk("a"), mk("b")},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	for i := 0; i < 2; i++ {
		if got := sys.Collected(i); got != 32 {
			t.Fatalf("stream %d collected %d of 32", i, got)
		}
		for n, w := range sys.Strs[i].Outputs {
			oi, _ := sim.UnpackIQ(w)
			ii, _ := sim.UnpackIQ(sim.Word(uint64(n)))
			if oi != ii<<1 {
				t.Fatalf("stream %d output %d = %d, want %d", i, n, oi, ii<<1)
			}
		}
		// Per-stream engine counted exactly its own samples.
		g := sys.Strs[i].Spec.Engines[0].(*accel.Gain)
		if g.Count != 32 {
			t.Errorf("stream %d engine count = %d, want 32", i, g.Count)
		}
	}
	rep := sys.Report()
	if rep.ReconfigCycles == 0 {
		t.Error("no reconfiguration cycles recorded")
	}
	// 16 blocks total (8 per stream) x 50 cycles.
	if rep.ReconfigCycles != 16*50 {
		t.Errorf("reconfig cycles = %d, want 800", rep.ReconfigCycles)
	}
}

func TestDecimatingChainOutBlockAccounting(t *testing.T) {
	// FIR decimating by 4: 16-sample blocks produce 4 outputs each.
	fir, err := accel.NewFIR([]int32{32767}, 4) // ~unity single tap
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name:       "dec",
		HopLatency: 1,
		EntryCost:  2,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		Accels:     []AccelSpec{{Name: "fir", Cost: 1, NICapacity: 2}},
		Streams: []StreamSpec{{
			Name:           "s",
			Block:          16,
			Decimation:     4,
			Reconfig:       10,
			InCapacity:     64,
			OutCapacity:    64,
			Engines:        []accel.Engine{fir},
			TotalInputs:    64,
			CollectOutputs: true,
		}},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	if got := sys.Collected(0); got != 16 {
		t.Fatalf("collected %d outputs, want 64/4 = 16", got)
	}
	rep := sys.Report()
	if rep.PerStream[0].Blocks != 4 {
		t.Errorf("blocks = %d, want 4", rep.PerStream[0].Blocks)
	}
}

func TestBlockNotMultipleOfDecimationRejected(t *testing.T) {
	fir, _ := accel.NewFIR([]int32{32767}, 4)
	cfg := Config{
		Name:      "bad",
		EntryCost: 1, ExitCost: 1,
		Accels: []AccelSpec{{Name: "fir", Cost: 1}},
		Streams: []StreamSpec{{
			Name: "s", Block: 10, Decimation: 4,
			InCapacity: 64, OutCapacity: 64,
			Engines: []accel.Engine{fir},
		}},
	}
	if _, err := Build(cfg); err == nil {
		t.Fatal("block not divisible by decimation accepted")
	}
}

// TestHardwareRefinesModel is the central validation (paper §III): the
// cycle-level "hardware" must be a temporal refinement of the analysis
// model. We check the measured worst-case block turnaround of every stream
// against the γs bound (Eq. 4) and the measured throughput against Eq. 5.
func TestHardwareRefinesModel(t *testing.T) {
	// Two streams, distinct block sizes, a 2-accelerator chain.
	cfg := Config{
		Name:       "refine",
		HopLatency: 1,
		EntryCost:  15,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		Accels: []AccelSpec{
			{Name: "a0", Cost: 1, NICapacity: 2},
			{Name: "a1", Cost: 1, NICapacity: 2},
		},
		Streams: []StreamSpec{
			{
				Name: "fast", Block: 64, Decimation: 1, Reconfig: 500,
				InCapacity: 256, OutCapacity: 256,
				Engines:     []accel.Engine{accel.Passthrough{}, accel.Passthrough{}},
				TotalInputs: 4096,
			},
			{
				Name: "slow", Block: 16, Decimation: 1, Reconfig: 500,
				InCapacity: 64, OutCapacity: 64,
				Engines:     []accel.Engine{accel.Passthrough{}, accel.Passthrough{}},
				TotalInputs: 1024,
			},
		},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5_000_000)

	model := &core.System{
		Chain: core.Chain{
			Name:       "refine",
			AccelCosts: []uint64{1, 1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: 100_000_000, // irrelevant for cycle-domain comparison
		Streams: []core.Stream{
			{Name: "fast", Rate: big.NewRat(1, 1), Reconfig: 500, Block: 64},
			{Name: "slow", Rate: big.NewRat(1, 1), Reconfig: 500, Block: 16},
		},
	}
	rep := sys.Report()
	for i := range model.Streams {
		gamma, err := model.GammaHat(i)
		if err != nil {
			t.Fatal(err)
		}
		sr := rep.PerStream[i]
		if sr.Blocks < 10 {
			t.Fatalf("stream %s processed only %d blocks", sr.Name, sr.Blocks)
		}
		if sr.MaxTurnaround > gamma {
			t.Errorf("stream %s: measured turnaround %d exceeds γ̂ = %d — hardware does not refine the model",
				sr.Name, sr.MaxTurnaround, gamma)
		} else {
			t.Logf("stream %s: worst turnaround %d cycles vs bound %d (%.1f%% of bound)",
				sr.Name, sr.MaxTurnaround, gamma, 100*float64(sr.MaxTurnaround)/float64(gamma))
		}
	}
}

func TestSpaceCheckAblation(t *testing.T) {
	// A1: with a slow sink and NO space check, the active stream's block
	// stalls mid-flight at the exit gateway and head-of-line blocks the
	// other stream, pushing its turnaround past the γ̂ bound. With the
	// check, the slow stream simply never becomes eligible and the fast
	// stream stays within its bound.
	build := func(disable bool) Report {
		cfg := Config{
			Name:              "ablate",
			HopLatency:        1,
			EntryCost:         15,
			ExitCost:          1,
			Mode:              gateway.ReconfigFixed,
			Accels:            []AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
			DisableSpaceCheck: disable,
			Streams: []StreamSpec{
				{
					// Stream whose consumer is extremely slow and whose
					// output FIFO is smaller than two blocks.
					Name: "clogged", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 20,
					Engines:     []accel.Engine{accel.Passthrough{}},
					SinkPeriod:  5_000,
					TotalInputs: 512,
				},
				{
					Name: "victim", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines:     []accel.Engine{accel.Passthrough{}},
					TotalInputs: 2048,
				},
			},
		}
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(2_000_000)
		return sys.Report()
	}

	model := &core.System{
		Chain:   core.Chain{Name: "ablate", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "clogged", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
			{Name: "victim", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
		},
	}
	gamma, err := model.GammaHat(1)
	if err != nil {
		t.Fatal(err)
	}

	with := build(false)
	without := build(true)
	if with.PerStream[1].MaxTurnaround > gamma {
		t.Errorf("WITH space check: victim turnaround %d exceeds γ̂ = %d",
			with.PerStream[1].MaxTurnaround, gamma)
	}
	if without.PerStream[1].MaxTurnaround <= gamma {
		t.Errorf("WITHOUT space check: victim turnaround %d unexpectedly within γ̂ = %d — ablation shows no effect",
			without.PerStream[1].MaxTurnaround, gamma)
	}
	t.Logf("victim worst turnaround: with check %d, without %d (bound %d)",
		with.PerStream[1].MaxTurnaround, without.PerStream[1].MaxTurnaround, gamma)
}

func TestReconfigPerWordMode(t *testing.T) {
	// A3: software state switching charges per state word; a FIR's delay
	// line makes reconfiguration dominate.
	fir1, _ := accel.NewFIR(make([]int32, 33), 1)
	fir2, _ := accel.NewFIR(make([]int32, 33), 1)
	cfg := Config{
		Name:       "sw",
		HopLatency: 1,
		EntryCost:  2,
		ExitCost:   1,
		Mode:       gateway.ReconfigPerWord,
		BusBase:    50,
		BusPerWord: 20,
		Accels:     []AccelSpec{{Name: "fir", Cost: 1, NICapacity: 2}},
		Streams: []StreamSpec{
			{
				Name: "x", Block: 8, Decimation: 1, Reconfig: 0,
				InCapacity: 32, OutCapacity: 32,
				Engines:     []accel.Engine{fir1},
				TotalInputs: 64,
			},
			{
				Name: "y", Block: 8, Decimation: 1, Reconfig: 0,
				InCapacity: 32, OutCapacity: 32,
				Engines:     []accel.Engine{fir2},
				TotalInputs: 64,
			},
		},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(3_000_000)
	rep := sys.Report()
	if sys.Collected(0) != 64 || sys.Collected(1) != 64 {
		t.Fatalf("collected %d/%d", sys.Collected(0), sys.Collected(1))
	}
	if rep.ReconfigShare < rep.StreamingShare {
		t.Errorf("per-word state switch should dominate: reconfig %.2f vs streaming %.2f",
			rep.ReconfigShare, rep.StreamingShare)
	}
}

func TestArbiterAblationPriorityStarves(t *testing.T) {
	// A saturated high-priority stream under FixedPriority starves the
	// other stream; RoundRobin bounds both (the reason §IV-C uses RR).
	build := func(arb gateway.Arbitration) Report {
		cfg := Config{
			Name:       "arb",
			HopLatency: 1,
			EntryCost:  15,
			ExitCost:   1,
			Mode:       gateway.ReconfigFixed,
			Arbiter:    arb,
			Accels:     []AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
			Streams: []StreamSpec{
				{
					// Saturating high-priority stream: always has a block.
					Name: "greedy", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines: []accel.Engine{accel.Passthrough{}},
				},
				{
					Name: "meek", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines: []accel.Engine{accel.Passthrough{}},
				},
			},
		}
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(500_000)
		return sys.Report()
	}
	model := &core.System{
		Chain:   core.Chain{Name: "arb", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "greedy", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
			{Name: "meek", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
		},
	}
	gamma, err := model.GammaHat(1)
	if err != nil {
		t.Fatal(err)
	}
	rr := build(gateway.RoundRobin)
	pr := build(gateway.FixedPriority)
	if rr.PerStream[1].MaxTurnaround > gamma {
		t.Errorf("RR: meek turnaround %d exceeds γ̂ = %d", rr.PerStream[1].MaxTurnaround, gamma)
	}
	// Under fixed priority the meek stream is starved: it serves far fewer
	// blocks and its turnaround blows past the bound.
	if pr.PerStream[1].Blocks*4 > pr.PerStream[0].Blocks {
		t.Errorf("priority: meek got %d blocks vs greedy %d — expected starvation",
			pr.PerStream[1].Blocks, pr.PerStream[0].Blocks)
	}
	if pr.PerStream[1].PendingWait <= gamma {
		t.Errorf("priority: meek pending wait %d within γ̂ = %d — ablation shows no effect",
			pr.PerStream[1].PendingWait, gamma)
	}
	if rr.PerStream[1].PendingWait > gamma {
		t.Errorf("RR: meek pending wait %d exceeds γ̂ = %d", rr.PerStream[1].PendingWait, gamma)
	}
	t.Logf("meek blocks: RR %d vs priority %d; meek pending wait: RR %d vs priority %d (γ̂=%d)",
		rr.PerStream[1].Blocks, pr.PerStream[1].Blocks,
		rr.PerStream[1].PendingWait, pr.PerStream[1].PendingWait, gamma)
}
