// Package mpsoc assembles the full simulated platform of the paper's
// Fig. 1: processor tiles, accelerator tiles and an entry-/exit-gateway
// pair on the dual-ring interconnect. It provides periodic source tasks
// (the radio front-end), sink tasks (audio output), and measurement of the
// quantities the evaluation section reports: throughput, block turnaround
// versus the γs bound, gateway duty cycle and accelerator utilisation.
//
// It is also where the recovery ladder becomes a platform property.
// Config.Recovery/DrainTimeout wire per-stream watchdog retry, checkpointed
// resume and quarantine into every assembled chain, and BuildMulti +
// FailoverController (failover.go) add the top rung: a fault doctor's
// wedged-chain verdict freezes the sick gateway pair, exports every
// stream's state — including the ≤ K-word replay residue and committed
// output watermark of a checkpointed in-flight block — re-points the
// C-FIFOs and resumes on a standby pair. The measured freeze→resume cost is
// checked against the bound max τ̂s + slots·bus-cost, where τ̂s is the
// adjusted Eq. 2 term τ̂s(K) when FailoverConfig.Checkpoint is set, and the
// survivor re-solve (Algorithm 1, warm-started) must never shrink a block
// below its migrated residue's resume point.
package mpsoc

import (
	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// AccelSpec describes one shared accelerator tile.
type AccelSpec struct {
	Name string
	// Cost is ρA in cycles per sample.
	Cost sim.Time
	// NICapacity is the NI FIFO depth (the paper's α1/α2 = 2).
	NICapacity int
}

// StreamSpec describes one stream multiplexed over the chain.
type StreamSpec struct {
	Name string
	// Block is ηs (input samples per turn); it must be a multiple of
	// Decimation, the chain's total down-sampling factor, so the exit
	// gateway sees exactly Block/Decimation samples per block.
	Block      int64
	Decimation int64
	// Reconfig is Rs in cycles.
	Reconfig sim.Time
	// InCapacity/OutCapacity size the input and output C-FIFOs in samples.
	InCapacity, OutCapacity int
	// Engines holds one engine per accelerator tile, in chain order.
	Engines []accel.Engine
	// SourcePeriod is the cycles between samples offered by the source task
	// (0 = offer as fast as the FIFO accepts). Source generates sample n.
	SourcePeriod sim.Time
	// SourcePeriodNum/Den, when Den != 0, give a rational sample period in
	// cycles (Num/Den); the source task Bresenham-accumulates so the
	// long-run rate is exact even when the platform clock is not an integer
	// multiple of the sample rate. Overrides SourcePeriod.
	SourcePeriodNum, SourcePeriodDen uint64
	Source                           func(n uint64) sim.Word
	// TotalInputs stops the source after that many samples (0 = endless).
	TotalInputs uint64
	// SinkPeriod is the cycles between sink reads (0 = drain eagerly).
	SinkPeriod sim.Time
	// CollectOutputs stores every output word for functional checks.
	CollectOutputs bool
	// RecordInputTimes stores the instant each source sample entered the
	// input C-FIFO (for per-sample latency measurements).
	RecordInputTimes bool
	// ExternalSource suppresses the built-in source task: the application
	// writes the input C-FIFO itself (e.g. a forwarder chaining two stages).
	ExternalSource bool
	// ExternalSink suppresses the built-in sink task likewise.
	ExternalSink bool
	// StartSuspended registers the gateway slot suspended (excluded from
	// arbitration) so an admission controller can activate it atomically
	// with the survivors' new block sizes in one ApplySlots transaction.
	StartSuspended bool
	// BatchIO moves the sink's eager drain onto the C-FIFO burst path: one
	// read-counter update per drain burst instead of one ring ack message
	// per word. Word data, counters and drain instants are unchanged (the
	// eager sink already pops everything available within one wake); only
	// ack traffic — and the kernel events carrying and retrying it —
	// shrinks. TestBatchTransportEquivalence pins the invariance.
	BatchIO bool
}

// Config assembles a platform.
type Config struct {
	Name string
	// HopLatency is the ring's per-hop latency in cycles.
	HopLatency sim.Time
	// Gateway costs and reconfiguration model.
	EntryCost, ExitCost sim.Time
	Mode                gateway.ReconfigMode
	Arbiter             gateway.Arbitration
	BusBase, BusPerWord sim.Time
	RecordOutputTimes   bool
	RecordActivity      bool
	UseSlottedRing      bool
	DisableSpaceCheck   bool
	// DrainTimeout/Recovery/OnStall/Faults/RecordTurnarounds configure the
	// watchdog and fault subsystem; see ChainSpec.
	DrainTimeout      sim.Time
	Recovery          gateway.Recovery
	OnStall           func(stream int)
	Faults            *fault.Plan
	RecordTurnarounds bool
	// BatchTransport enables the gateway burst stage-commit path (see
	// ChainSpec.BatchTransport).
	BatchTransport bool
	Accels         []AccelSpec
	Streams        []StreamSpec
}

// Stream is the runtime state of one stream.
type Stream struct {
	Spec StreamSpec
	GW   *gateway.Stream
	In   *cfifo.FIFO
	Out  *cfifo.FIFO

	Outputs []sim.Word

	produced  uint64
	collected uint64
	// Overflows counts source samples that found the input FIFO full — a
	// real-time violation if it ever exceeds zero.
	Overflows uint64
	// FirstOutputAt / LastOutputAt bracket the sink's observations.
	FirstOutputAt, LastOutputAt sim.Time
	// InTimes records source-sample entry instants (RecordInputTimes).
	InTimes []sim.Time

	// sourceGen invalidates the running source task's tick loop: each
	// StopSource/restart bumps it, so a pending tick of a superseded loop
	// exits instead of racing a freshly started one.
	sourceGen int

	// ringHome/ringNodes remember the reserved (source, sink) ring-node
	// pair AttachStream consumed, so ReclaimStream can return it to the
	// home chain's pool when the stream departs for good. C-FIFO transport
	// is addressed by (node, port) with a globally unique port per stream,
	// so a recycled node pair never collides with the departed stream's
	// idle sink. reclaimable is false for streams built with the platform
	// (their attachment points were never in the reserved pool).
	ringHome    int
	ringNodes   [2]int
	reclaimable bool
}

// StopSource makes the stream's built-in source task exit at its next tick,
// so a removed stream stops feeding its input C-FIFO. ResumeSource on the
// owning MultiSystem restarts it.
func (st *Stream) StopSource() { st.sourceGen++ }

// System is the assembled platform.
type System struct {
	K     *sim.Kernel
	Net   *ring.Dual
	Pair  *gateway.Pair
	Tiles []*accel.Tile
	Strs  []*Stream

	cfg Config
}

// Build assembles a single-chain platform (the common case); it delegates
// to BuildMulti, which supports several gateway pairs on one ring (Fig. 1).
func Build(cfg Config) (*System, error) {
	ms, err := BuildMulti(MultiConfig{
		Name:              cfg.Name,
		HopLatency:        cfg.HopLatency,
		RecordOutputTimes: cfg.RecordOutputTimes,
		RecordActivity:    cfg.RecordActivity,
		UseSlottedRing:    cfg.UseSlottedRing,
		Chains: []ChainSpec{{
			Name:              cfg.Name,
			EntryCost:         cfg.EntryCost,
			ExitCost:          cfg.ExitCost,
			Mode:              cfg.Mode,
			Arbiter:           cfg.Arbiter,
			BusBase:           cfg.BusBase,
			BusPerWord:        cfg.BusPerWord,
			DisableSpaceCheck: cfg.DisableSpaceCheck,
			DrainTimeout:      cfg.DrainTimeout,
			Recovery:          cfg.Recovery,
			OnStall:           cfg.OnStall,
			Faults:            cfg.Faults,
			RecordTurnarounds: cfg.RecordTurnarounds,
			BatchTransport:    cfg.BatchTransport,
			Accels:            cfg.Accels,
			Streams:           cfg.Streams,
		}},
	})
	if err != nil {
		return nil, err
	}
	ch := ms.Chains[0]
	return &System{K: ms.K, Net: ms.Net, Pair: ch.Pair, Tiles: ch.Tiles, Strs: ch.Strs, cfg: cfg}, nil
}

// ackBatch picks a read-counter update granularity for the gateway input
// FIFO: frequent enough that space returns well within a block period.
func ackBatch(capacity int) int {
	b := capacity / 8
	if b < 1 {
		b = 1
	}
	return b
}

// startSourceTask runs the periodic producer task for a stream.
func startSourceTask(k *sim.Kernel, st *Stream) {
	gen := st.Spec.Source
	if gen == nil {
		gen = func(n uint64) sim.Word { return sim.Word(n) }
	}
	num, den := st.Spec.SourcePeriodNum, st.Spec.SourcePeriodDen
	if den == 0 {
		num, den = uint64(st.Spec.SourcePeriod), 1
	}
	periodic := num > 0
	var acc uint64 // Bresenham remainder accumulator (units of 1/den cycles)
	nextDelay := func() sim.Time {
		if !periodic {
			return 1
		}
		acc += num
		d := acc / den
		acc %= den
		return sim.Time(d)
	}
	var tick func()
	taskGen := st.sourceGen
	tick = func() {
		if st.sourceGen != taskGen {
			return
		}
		if st.Spec.TotalInputs > 0 && st.produced >= st.Spec.TotalInputs {
			return
		}
		if st.In.TryWrite(gen(st.produced)) {
			if st.Spec.RecordInputTimes {
				st.InTimes = append(st.InTimes, k.Now())
			}
			st.produced++
		} else if st.In.Space() <= 0 && periodic {
			// A periodic front-end cannot stall: a full FIFO means a missed
			// real-time deadline. Drop the sample and count it.
			st.Overflows++
			st.produced++
		}
		k.Schedule(nextDelay(), tick)
	}
	k.Schedule(0, tick)
}

// startSinkTask runs the consumer task for a stream.
func startSinkTask(k *sim.Kernel, st *Stream) {
	period := st.Spec.SinkPeriod
	var burst []sim.Word
	if st.Spec.BatchIO && period == 0 {
		burst = make([]sim.Word, 64)
	}
	collect := func(w sim.Word) {
		if st.collected == 0 {
			st.FirstOutputAt = k.Now()
		}
		st.LastOutputAt = k.Now()
		st.collected++
		if st.Spec.CollectOutputs {
			st.Outputs = append(st.Outputs, w)
		}
	}
	var tick func()
	tick = func() {
		if burst != nil {
			// Batched eager drain: same pops at the same instant as the
			// per-word loop below, but one coalesced read-counter update per
			// burst instead of one ring ack per word.
			for {
				n := st.Out.ReadBurst(burst)
				if n == 0 {
					break
				}
				for _, w := range burst[:n] {
					collect(w)
				}
			}
			return
		}
		for {
			w, ok := st.Out.TryRead()
			if !ok {
				break
			}
			collect(w)
			if period > 0 {
				break // one sample per period
			}
		}
		if period > 0 {
			k.Schedule(period, tick)
		}
	}
	if period > 0 {
		k.Schedule(0, tick)
	} else {
		w := sim.NewWaker(k, tick)
		st.Out.SubscribeData(w)
	}
}

// Run starts the gateways and advances the simulation to the horizon.
func (s *System) Run(horizon sim.Time) {
	s.Pair.Start()
	s.K.Run(horizon)
}

// Collected returns how many output samples the sink of stream i consumed.
func (s *System) Collected(i int) uint64 { return s.Strs[i].collected }

// Report summarises the measurements the evaluation needs.
type Report struct {
	Cycles          uint64
	ReconfigCycles  uint64
	StreamingCycles uint64
	// StreamingShare and ReconfigShare are fractions of busy (non-idle)
	// gateway time.
	StreamingShare, ReconfigShare float64
	PerStream                     []StreamReport
	TileBusy                      []float64 // per accelerator utilisation
}

// StreamReport is the per-stream slice of a Report.
type StreamReport struct {
	Name          string
	Blocks        uint64
	SamplesIn     uint64
	SamplesOut    uint64
	Overflows     uint64
	MaxTurnaround sim.Time
	// PendingWait is how long an eligible block has been waiting unserved
	// at the end of the run (starvation indicator).
	PendingWait sim.Time
	// OutputRate is samples per cycle over the observation window.
	OutputRate float64
	// Stalls/Retries count watchdog firings and block replays attributed
	// to this stream; Quarantined (at QuarantinedAt) means the stream was
	// removed from arbitration after exhausting its retry budget.
	Stalls        uint64
	Retries       uint64
	Quarantined   bool
	QuarantinedAt sim.Time
}

// Report collects the measurements after Run.
func (s *System) Report() Report {
	return chainReport(s.K, &Chain{Pair: s.Pair, Tiles: s.Tiles, Strs: s.Strs})
}
