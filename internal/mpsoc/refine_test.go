package mpsoc

import (
	"math/big"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// TestPerTokenRefinement sharpens the block-level check to per-sample
// granularity: within one block served from an idle pipeline, the k-th
// output sample (1-based) must leave the exit gateway no later than
// Rs + (k+2)·c0 after the gateway begins serving the block — the per-token
// reading of the Fig. 6 schedule that Eq. 2 summarises at k = η.
func TestPerTokenRefinement(t *testing.T) {
	const (
		eta   = 32
		rs    = 500
		eps   = 15
		total = eta
	)
	cfg := Config{
		Name:              "tok",
		HopLatency:        1,
		EntryCost:         eps,
		ExitCost:          1,
		Mode:              gateway.ReconfigFixed,
		RecordOutputTimes: true,
		RecordActivity:    true,
		Accels: []AccelSpec{
			{Name: "a0", Cost: 1, NICapacity: 2},
			{Name: "a1", Cost: 1, NICapacity: 2},
		},
		Streams: []StreamSpec{{
			Name: "s", Block: eta, Decimation: 1, Reconfig: rs,
			InCapacity: 4 * eta, OutCapacity: 4 * eta,
			Engines:     []accel.Engine{accel.Passthrough{}, accel.Passthrough{}},
			TotalInputs: total,
		}},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	st := sys.Strs[0].GW
	if len(st.OutTimes) != eta {
		t.Fatalf("outputs = %d, want %d", len(st.OutTimes), eta)
	}
	// Block service start = start of the reconfiguration span.
	acts := sys.Pair.Activities
	if len(acts) == 0 || acts[0].Kind != gateway.ActReconfig {
		t.Fatalf("activity trace missing reconfig: %+v", acts)
	}
	blockStart := acts[0].Start
	c0 := sim.Time(eps)
	for k := 1; k <= eta; k++ {
		bound := blockStart + rs + sim.Time(k+2)*c0
		got := st.OutTimes[k-1]
		if got > bound {
			t.Errorf("token %d exits at %d, per-token bound %d (block start %d)", k, got, bound, blockStart)
		}
	}
	// And the bound is not trivially loose: the last token should land
	// within one c0 slack of its bound.
	last := st.OutTimes[eta-1]
	bound := blockStart + rs + sim.Time(eta+2)*c0
	if bound-last > 2*c0 {
		t.Errorf("last token at %d vs bound %d: slack %d too generous", last, bound, bound-last)
	}
}

// TestSlottedRingSystemEquivalence runs the same two-stream workload on
// both interconnect implementations: functional outputs must be identical
// and the cycle-true ring's timing must stay within the model bound.
func TestSlottedRingSystemEquivalence(t *testing.T) {
	build := func(slotted bool) *System {
		cfg := Config{
			Name:           "slotcmp",
			HopLatency:     1,
			EntryCost:      15,
			ExitCost:       1,
			Mode:           gateway.ReconfigFixed,
			UseSlottedRing: slotted,
			Accels:         []AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
			Streams: []StreamSpec{
				{
					Name: "x", Block: 16, Decimation: 1, Reconfig: 100,
					InCapacity: 64, OutCapacity: 64,
					Engines:        []accel.Engine{&accel.Gain{Shift: 1}},
					TotalInputs:    256,
					CollectOutputs: true,
				},
				{
					Name: "y", Block: 8, Decimation: 1, Reconfig: 100,
					InCapacity: 32, OutCapacity: 32,
					Engines:        []accel.Engine{&accel.Gain{Shift: 2}},
					TotalInputs:    128,
					CollectOutputs: true,
				},
			},
		}
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(3_000_000)
		return sys
	}
	abs := build(false)
	slt := build(true)
	for i := 0; i < 2; i++ {
		if len(abs.Strs[i].Outputs) != len(slt.Strs[i].Outputs) {
			t.Fatalf("stream %d: outputs %d vs %d", i, len(abs.Strs[i].Outputs), len(slt.Strs[i].Outputs))
		}
		for n := range abs.Strs[i].Outputs {
			if abs.Strs[i].Outputs[n] != slt.Strs[i].Outputs[n] {
				t.Fatalf("stream %d output %d differs between interconnects", i, n)
			}
		}
	}
	// Timing: the cycle-true ring adds slot-wait jitter, but both must stay
	// within the analysis bound.
	model := &core.System{
		Chain:   core.Chain{Name: "slotcmp", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "x", Rate: big.NewRat(1, 1), Reconfig: 100, Block: 16},
			{Name: "y", Rate: big.NewRat(1, 1), Reconfig: 100, Block: 8},
		},
	}
	for i := 0; i < 2; i++ {
		gamma, err := model.GammaHat(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range []*System{abs, slt} {
			rep := sys.Report()
			if rep.PerStream[i].MaxTurnaround > gamma {
				t.Errorf("stream %d turnaround %d exceeds γ̂ %d (slotted=%v)",
					i, rep.PerStream[i].MaxTurnaround, gamma, sys == slt)
			}
		}
	}
}

// TestPerSampleLatencyBound validates core.WorstCaseSampleLatency on the
// simulated platform: every sample's measured input→output latency stays
// below the analytic bound L̂ = ⌈(η-1)/μ⌉ + γ̂.
func TestPerSampleLatencyBound(t *testing.T) {
	const (
		eta    = 16
		rs     = 200
		eps    = 15
		period = 64 // cycles per sample: μ = 1/64 samples/cycle
		total  = 256
	)
	cfg := Config{
		Name:              "lat",
		HopLatency:        1,
		EntryCost:         eps,
		ExitCost:          1,
		Mode:              gateway.ReconfigFixed,
		RecordOutputTimes: true,
		Accels:            []AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
		Streams: []StreamSpec{{
			Name: "s", Block: eta, Decimation: 1, Reconfig: rs,
			InCapacity: 4 * eta, OutCapacity: 4 * eta,
			Engines:          []accel.Engine{accel.Passthrough{}},
			SourcePeriod:     period,
			TotalInputs:      total,
			RecordInputTimes: true,
		}},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5_000_000)
	st := sys.Strs[0]
	if len(st.InTimes) != total || len(st.GW.OutTimes) != total {
		t.Fatalf("in=%d out=%d of %d", len(st.InTimes), len(st.GW.OutTimes), total)
	}

	model := &core.System{
		Chain:   core.Chain{Name: "lat", AccelCosts: []uint64{1}, EntryCost: eps, ExitCost: 1, NICapacity: 2},
		ClockHz: 64, // one sample per cycle of "1 Hz" per 64 clock: rate = 1 sample / 64 cycles
		Streams: []core.Stream{{Name: "s", Rate: big.NewRat(1, 1), Reconfig: rs, Block: eta}},
	}
	bound, err := model.WorstCaseSampleLatency(0)
	if err != nil {
		t.Fatal(err)
	}
	var worst sim.Time
	for k := 0; k < total; k++ {
		lat := st.GW.OutTimes[k] - st.InTimes[k]
		if lat > worst {
			worst = lat
		}
	}
	if worst > bound {
		t.Fatalf("worst per-sample latency %d exceeds bound %d", worst, bound)
	}
	// Sanity on tightness: the bound should be within ~2x of measured here
	// (single stream, so no interference term inflates γ̂).
	if bound > 3*worst {
		t.Errorf("bound %d very loose vs measured %d", bound, worst)
	}
	t.Logf("worst per-sample latency %d cycles vs bound %d", worst, bound)
}
