package mpsoc

// Multi-chain assembly: the paper's Fig. 1 shows TWO entry/exit-gateway
// pairs (G0/G1 and G2/G3), each managing its own set of accelerator tiles
// on the shared dual ring. BuildMulti constructs any number of such chains
// on one interconnect; Build (single chain) delegates here.

import (
	"fmt"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// ChainSpec groups one gateway pair with its accelerators and streams.
type ChainSpec struct {
	Name                string
	EntryCost, ExitCost sim.Time
	Mode                gateway.ReconfigMode
	Arbiter             gateway.Arbitration
	BusBase, BusPerWord sim.Time
	DisableSpaceCheck   bool
	// DrainTimeout arms the gateway's progress watchdog (0 = disabled) and
	// Recovery configures flush/retry/quarantine on expiry.
	DrainTimeout sim.Time
	Recovery     gateway.Recovery
	// OnStall is forwarded to the gateway (called per detected stall).
	OnStall func(stream int)
	// Faults, when non-nil, is armed against this chain: engine-level
	// faults wrap the streams' engines, wedge faults are scheduled on the
	// chain's links / the data ring, and lost-idle faults install the
	// gateway's DropIdle hook.
	Faults *fault.Plan
	// RecordTurnarounds keeps per-block latency records on every stream.
	RecordTurnarounds bool
	// BatchTransport enables the gateway's burst stage-commit path (see
	// gateway.Config.BatchTransport): identical observable model, fewer
	// component steps. Campaigns keep it off so goldens pin the per-word path.
	BatchTransport bool
	// ReserveSlots pre-provisions ring attachment points (one source and one
	// sink tile each) for streams admitted at runtime via AttachStream. The
	// ring topology is fixed in hardware, so online admission can only use
	// slots that were reserved when the platform was built.
	ReserveSlots int
	// Standby marks a chain built with zero streams, held in reserve as a
	// failover target (NewFailover): the paper's second gateway pair. Its
	// accelerator tiles sit idle until streams migrate onto them.
	Standby bool
	Accels  []AccelSpec
	Streams []StreamSpec
}

// MultiConfig assembles a platform with several shared chains on one ring.
type MultiConfig struct {
	Name              string
	HopLatency        sim.Time
	RecordOutputTimes bool
	RecordActivity    bool
	// UseSlottedRing backs the interconnect with the cycle-true slotted
	// mechanism instead of the transaction-level abstraction (slower to
	// simulate, validates the abstraction at system level).
	UseSlottedRing bool
	Chains         []ChainSpec
}

// Chain is the runtime state of one assembled chain.
type Chain struct {
	Spec  ChainSpec
	Pair  *gateway.Pair
	Tiles []*accel.Tile
	Strs  []*Stream
	// Links holds the chain's credit-controlled links in order: 0 = entry
	// gateway -> first tile, i = the link after tile i-1 (fault Site
	// convention).
	Links []*accel.Link
	// EntryNode/ExitNode are the gateway pair's ring attachment points;
	// reserved holds the pre-provisioned (source, sink) ring-node pairs
	// still available to AttachStream (ChainSpec.ReserveSlots).
	EntryNode, ExitNode int
	reserved            [][2]int
}

// ReservedSlots reports how many runtime stream slots remain unclaimed.
func (ch *Chain) ReservedSlots() int { return len(ch.reserved) }

// MultiSystem is a platform with several gateway pairs.
type MultiSystem struct {
	K      *sim.Kernel
	Net    *ring.Dual
	Chains []*Chain
	// portSeq numbers every stream's C-FIFO ports uniquely across the whole
	// platform. Ring ports are handler keys on nodes, so uniqueness must
	// hold per node — and evacuation re-points a stream's gateway-side
	// endpoints onto ANOTHER chain's entry/exit nodes, where a chain-local
	// numbering would collide with the host's own streams.
	portSeq int
}

// BuildMulti assembles the multi-chain platform. Ring node layout per
// chain: entry gateway, accelerator tiles, exit gateway; then one source
// and one sink tile per stream, all chains concatenated.
func BuildMulti(cfg MultiConfig) (*MultiSystem, error) {
	if len(cfg.Chains) == 0 {
		return nil, fmt.Errorf("mpsoc: no chains")
	}
	// First pass: compute the ring size.
	total := 0
	for _, ch := range cfg.Chains {
		if len(ch.Accels) == 0 {
			return nil, fmt.Errorf("mpsoc: chain %q has no accelerators", ch.Name)
		}
		if len(ch.Streams) == 0 && !ch.Standby {
			return nil, fmt.Errorf("mpsoc: chain %q has no streams", ch.Name)
		}
		total += 2 + len(ch.Accels) + 2*(len(ch.Streams)+ch.ReserveSlots)
	}
	k := sim.NewKernel()
	var net *ring.Dual
	var err error
	if cfg.UseSlottedRing {
		net, err = ring.NewDualSlotted(k, total)
	} else {
		net, err = ring.NewDual(k, total, cfg.HopLatency)
	}
	if err != nil {
		return nil, err
	}
	ms := &MultiSystem{K: k, Net: net}
	next := 0
	for ci := range cfg.Chains {
		ch, err := assembleChain(k, net, cfg, cfg.Chains[ci], &next, &ms.portSeq)
		if err != nil {
			return nil, fmt.Errorf("chain %q: %w", cfg.Chains[ci].Name, err)
		}
		ms.Chains = append(ms.Chains, ch)
	}
	return ms, nil
}

const (
	portData   = 1
	portCredit = 1
	portIdle   = 7
)

// assembleChain wires one gateway pair and its streams, consuming ring
// nodes from *next.
func assembleChain(k *sim.Kernel, net *ring.Dual, top MultiConfig, spec ChainSpec, next, portSeq *int) (*Chain, error) {
	take := func() int { n := *next; *next++; return n }
	entryN := take()
	var accelN []int
	for range spec.Accels {
		accelN = append(accelN, take())
	}
	exitN := take()

	ch := &Chain{Spec: spec, EntryNode: entryN, ExitNode: exitN}
	for _, as := range spec.Accels {
		ni := as.NICapacity
		if ni == 0 {
			ni = 2
		}
		ch.Tiles = append(ch.Tiles, accel.NewTile(as.Name, k, as.Cost, ni))
	}
	entryLink := accel.NewLink("entry->"+spec.Accels[0].Name, k, net,
		entryN, accelN[0], portData, portCredit, ch.Tiles[0].In())
	ch.Links = append(ch.Links, entryLink)
	for i := 0; i+1 < len(ch.Tiles); i++ {
		l := accel.NewLink(fmt.Sprintf("%s->%s", spec.Accels[i].Name, spec.Accels[i+1].Name), k, net,
			accelN[i], accelN[i+1], portData, portCredit, ch.Tiles[i+1].In())
		ch.Tiles[i].SetDownstream(l)
		ch.Links = append(ch.Links, l)
	}
	exitNI := sim.NewQueue(spec.Name+".exit.ni", 2)
	lastLink := accel.NewLink(spec.Accels[len(spec.Accels)-1].Name+"->exit", k, net,
		accelN[len(accelN)-1], exitN, portData, portCredit, exitNI)
	ch.Tiles[len(ch.Tiles)-1].SetDownstream(lastLink)
	ch.Links = append(ch.Links, lastLink)

	gwCfg := gateway.Config{
		Name:              spec.Name,
		EntryNode:         entryN,
		ExitNode:          exitN,
		EntryCost:         spec.EntryCost,
		ExitCost:          spec.ExitCost,
		Mode:              spec.Mode,
		Arbiter:           spec.Arbiter,
		BusBase:           spec.BusBase,
		BusPerWord:        spec.BusPerWord,
		IdlePort:          portIdle,
		RecordOutputTimes: top.RecordOutputTimes,
		RecordActivity:    top.RecordActivity,
		DisableSpaceCheck: spec.DisableSpaceCheck,
		DrainTimeout:      spec.DrainTimeout,
		Recovery:          spec.Recovery,
		OnStall:           spec.OnStall,
		RecordTurnarounds: spec.RecordTurnarounds,
		BatchTransport:    spec.BatchTransport,
	}
	if spec.Faults != nil {
		gwCfg.DropIdle = spec.Faults.IdleDropper()
		// Wedge faults target this chain's links and the shared data ring;
		// the cycle-true slotted transport has no wedge hooks, so WedgeNode
		// faults require the transaction-level ring.
		dataRing, _ := net.Data.(*ring.Ring)
		if err := spec.Faults.ArmWedges(k, ch.Links, dataRing); err != nil {
			return nil, err
		}
	}
	pair, err := gateway.NewPair(k, net, gwCfg, ch.Tiles, entryLink, exitNI)
	if err != nil {
		return nil, err
	}
	ch.Pair = pair

	for i := range spec.Streams {
		srcN := take()
		sinkN := take()
		port := *portSeq
		*portSeq++
		st, err := buildStream(k, net, ch, spec.Streams[i], i, port, srcN, sinkN)
		if err != nil {
			return nil, err
		}
		if err := pair.AddStream(st.GW); err != nil {
			return nil, err
		}
		ch.Strs = append(ch.Strs, st)
		startStreamTasks(k, st)
	}
	for r := 0; r < spec.ReserveSlots; r++ {
		srcN := take()
		sinkN := take()
		ch.reserved = append(ch.reserved, [2]int{srcN, sinkN})
	}
	return ch, nil
}

// buildStream wires one stream's C-FIFOs and gateway slot (without
// registering it with the pair or starting its tasks): shared between
// build-time assembly and runtime AttachStream.
func buildStream(k *sim.Kernel, net *ring.Dual, ch *Chain, ss StreamSpec, idx, port, srcN, sinkN int) (*Stream, error) {
	if ss.Decimation < 1 {
		ss.Decimation = 1
	}
	if ss.Block%ss.Decimation != 0 {
		return nil, fmt.Errorf("stream %q block %d not a multiple of decimation %d",
			ss.Name, ss.Block, ss.Decimation)
	}
	in, err := cfifo.New(k, net, cfifo.Config{
		Name: ss.Name + ".in", Capacity: ss.InCapacity,
		ProducerNode: srcN, ConsumerNode: ch.EntryNode,
		DataPort: 100 + port, AckPort: 100 + port,
		AckBatch: ackBatch(ss.InCapacity),
	})
	if err != nil {
		return nil, err
	}
	// Per-word read-counter updates by default (the goldens' regime). With
	// BatchIO the sink acknowledges a whole output block with one absolute
	// counter update — the batched block transport the C-FIFO algorithm
	// permits; with the usual ≥ 2-block capacity slack the producer's space
	// view never gates on the elided intermediate updates, so the observable
	// model is unchanged (TestBatchTransportEquivalence).
	outAck := 1
	if ss.BatchIO {
		outAck = int(ss.Block / ss.Decimation)
		if outAck > ss.OutCapacity {
			outAck = ss.OutCapacity
		}
		if outAck < 1 {
			outAck = 1
		}
	}
	out, err := cfifo.New(k, net, cfifo.Config{
		Name: ss.Name + ".out", Capacity: ss.OutCapacity,
		ProducerNode: ch.ExitNode, ConsumerNode: sinkN,
		DataPort: 100 + port, AckPort: 200 + port,
		AckBatch: outAck,
	})
	if err != nil {
		return nil, err
	}
	engines := ss.Engines
	if ch.Spec.Faults != nil && ch.Spec.Faults.EngineFaults(idx) {
		engines = ch.Spec.Faults.WrapEngines(idx, engines)
	}
	st := &Stream{Spec: ss, In: in, Out: out}
	st.GW = &gateway.Stream{
		Name:      ss.Name,
		Block:     ss.Block,
		OutBlock:  ss.Block / ss.Decimation,
		Reconfig:  ss.Reconfig,
		In:        in,
		Out:       out,
		Engines:   engines,
		Suspended: ss.StartSuspended,
	}
	return st, nil
}

// startStreamTasks launches the stream's source and sink tasks unless the
// spec marks them external.
func startStreamTasks(k *sim.Kernel, st *Stream) {
	if !st.Spec.ExternalSource {
		startSourceTask(k, st)
	}
	if !st.Spec.ExternalSink {
		startSinkTask(k, st)
	}
}

// AttachStream admits a new stream to a RUNNING chain using one of its
// reserved ring slots. The chain's gateway pair must be paused at a block
// boundary (gateway.RequestPause): the slot is registered Suspended when
// ss.StartSuspended is set, so the admission controller can activate it
// atomically with the survivors' new block sizes in one ApplySlots
// transaction. The stream's source and sink tasks start immediately —
// samples buffer in the input C-FIFO until the slot is activated.
func (m *MultiSystem) AttachStream(chainIdx int, ss StreamSpec) (*Stream, error) {
	if chainIdx < 0 || chainIdx >= len(m.Chains) {
		return nil, fmt.Errorf("mpsoc: chain %d out of range", chainIdx)
	}
	ch := m.Chains[chainIdx]
	if len(ch.reserved) == 0 {
		return nil, fmt.Errorf("mpsoc: chain %q has no reserved stream slots", ch.Spec.Name)
	}
	nodes := ch.reserved[0]
	idx := len(ch.Strs)
	port := m.portSeq
	m.portSeq++
	st, err := buildStream(m.K, m.Net, ch, ss, idx, port, nodes[0], nodes[1])
	if err != nil {
		return nil, err
	}
	if _, err := ch.Pair.AddStreamLive(st.GW); err != nil {
		return nil, err
	}
	ch.reserved = ch.reserved[1:]
	st.ringHome = chainIdx
	st.ringNodes = nodes
	st.reclaimable = true
	ch.Strs = append(ch.Strs, st)
	startStreamTasks(m.K, st)
	return st, nil
}

// AdoptStream moves one exported stream onto chain chainIdx: the per-stream
// evacuation primitive of the fleet control plane. Where a full failover
// migrates every slot of a dead pair to one standby, evacuation re-places
// each stream individually on whichever surviving chain admits it. The
// caller must have frozen the source pair (gateway.FreezeForFailover), gated
// the stream's input producer (cfifo.BeginRepoint) and waited out the settle
// delay; the target pair must be paused (the import runs inside an admission
// transition). Unlike AttachStream, no reserved ring slot is consumed — the
// stream keeps its existing source/sink ring nodes, only the C-FIFO gateway
// endpoints are re-pointed.
func (m *MultiSystem) AdoptStream(chainIdx int, st *Stream, e gateway.StreamExport) (int, error) {
	if chainIdx < 0 || chainIdx >= len(m.Chains) {
		return 0, fmt.Errorf("mpsoc: chain %d out of range", chainIdx)
	}
	ch := m.Chains[chainIdx]
	slot, err := ch.Pair.ImportStream(e)
	if err != nil {
		return 0, err
	}
	st.In.RepointConsumer(ch.EntryNode)
	st.Out.RepointProducer(ch.ExitNode)
	ch.Strs = append(ch.Strs, st)
	return slot, nil
}

// ReleaseStream detaches one suspended stream from a LIVE chain for
// rebalancing: the inverse of AdoptStream. The admission controller must
// have removed the stream first (drain, suspend, survivor re-solve), so no
// block is in flight. The gateway slot is swapped for a Released tombstone
// (slot indices never shift — the zombie-slot precedent) and so is the
// chain's Strs entry, keeping the two tables parallel for chainReport. The
// caller owns the returned stream and export, gates its producer
// (cfifo.BeginRepoint), waits out the settle delay, and hands both to the
// target controller's AdmitMigrated/AdoptStream. Streams are matched by name
// scanning backwards so the newest same-name slot wins over zombies.
func (m *MultiSystem) ReleaseStream(chainIdx int, name string) (*Stream, gateway.StreamExport, error) {
	if chainIdx < 0 || chainIdx >= len(m.Chains) {
		return nil, gateway.StreamExport{}, fmt.Errorf("mpsoc: chain %d out of range", chainIdx)
	}
	ch := m.Chains[chainIdx]
	for slot := len(ch.Strs) - 1; slot >= 0; slot-- {
		st := ch.Strs[slot]
		if st.GW.Name != name || st.GW.Released {
			continue
		}
		ex, err := ch.Pair.ReleaseSlot(slot)
		if err != nil {
			return nil, gateway.StreamExport{}, err
		}
		// ReleaseSlot left a gateway tombstone at the slot; mirror it here so
		// ch.Strs stays index-parallel with the pair's slot table. The
		// tombstone's spec claims an external source/sink so a stray
		// ResumeSource on this index can never start a task against nil FIFOs.
		tomb := st.Spec
		tomb.ExternalSource, tomb.ExternalSink = true, true
		ch.Strs[slot] = &Stream{Spec: tomb, GW: ch.Pair.Streams()[slot]}
		return st, ex, nil
	}
	return nil, gateway.StreamExport{}, fmt.Errorf("mpsoc: chain %q has no stream %q", ch.Spec.Name, name)
}

// ReclaimStream retires a departed stream and returns its reserved ring
// attachment points to its home chain's pool, so a long-serving fleet can
// admit an unbounded sequence of stream lifetimes through a bounded set of
// ring slots. The admission controller must have removed the stream first
// (drained, suspended, survivors re-solved) — ReclaimStream then releases
// the slot exactly like a rebalance export (gateway tombstone, indices
// stable) but discards the export: the stream is gone, not migrating. The
// departed stream's sink task idles harmlessly; transport is port-addressed
// so the recycled nodes never deliver to it again.
func (m *MultiSystem) ReclaimStream(chainIdx int, name string) error {
	st, _, err := m.ReleaseStream(chainIdx, name)
	if err != nil {
		return err
	}
	st.StopSource()
	if st.reclaimable {
		home := m.Chains[st.ringHome]
		home.reserved = append(home.reserved, st.ringNodes)
		st.reclaimable = false
	}
	return nil
}

// StartSource (re)starts a stream's built-in source task by reference.
// Evacuation moves Stream objects between chains, so the (chain, index)
// addressing of ResumeSource does not survive a migration; the control plane
// holds the *Stream and restarts it directly (a shed stream resuming after
// readmission onto a healed chain).
func (m *MultiSystem) StartSource(st *Stream) {
	if st.Spec.ExternalSource {
		return
	}
	st.sourceGen++
	startSourceTask(m.K, st)
}

// ResumeSource (re)starts a stream's built-in source task after StopSource
// (a readmitted stream starts producing again). Any still-running loop is
// superseded, so calling it repeatedly leaves exactly one task.
func (m *MultiSystem) ResumeSource(chainIdx, streamIdx int) {
	ch := m.Chains[chainIdx]
	st := ch.Strs[streamIdx]
	if st.Spec.ExternalSource {
		return
	}
	st.sourceGen++
	startSourceTask(m.K, st)
}

// Run starts every gateway pair and advances the simulation.
func (m *MultiSystem) Run(horizon sim.Time) {
	for _, ch := range m.Chains {
		ch.Pair.Start()
	}
	m.K.Run(horizon)
}

// Report collects per-chain measurements.
func (m *MultiSystem) Report() []Report {
	var out []Report
	for _, ch := range m.Chains {
		out = append(out, chainReport(m.K, ch))
	}
	return out
}

func chainReport(k *sim.Kernel, ch *Chain) Report {
	total, rec, str := ch.Pair.Busy()
	r := Report{Cycles: total, ReconfigCycles: rec, StreamingCycles: str}
	busy := float64(rec + str)
	if busy > 0 {
		r.StreamingShare = float64(str) / busy
		r.ReconfigShare = float64(rec) / busy
	}
	for i, snap := range ch.Pair.Snapshot() {
		sr := StreamReport{
			Name:          snap.Name,
			Blocks:        snap.Blocks,
			SamplesIn:     snap.SamplesIn,
			SamplesOut:    snap.SamplesOut,
			Overflows:     ch.Strs[i].Overflows,
			MaxTurnaround: snap.MaxTurnaround,
			PendingWait:   ch.Pair.PendingWait(i),
			Stalls:        snap.Stalls,
			Retries:       snap.Retries,
			Quarantined:   snap.Quarantined,
			QuarantinedAt: snap.QuarantinedAt,
		}
		if total > 0 {
			sr.OutputRate = float64(snap.SamplesOut) / float64(total)
		}
		r.PerStream = append(r.PerStream, sr)
	}
	for _, t := range ch.Tiles {
		if total > 0 {
			r.TileBusy = append(r.TileBusy, float64(t.BusyCycles)/float64(total))
		} else {
			r.TileBusy = append(r.TileBusy, 0)
		}
	}
	return r
}
