package mpsoc

// Chain failover: the paper's Fig. 1 platform carries TWO entry/exit-gateway
// pairs on the shared ring. When the fault doctor convicts a whole chain —
// stalls spreading across distinct streams, meaning a tile, a link or the
// ring segment is sick, not one stream's data — per-stream recovery only
// burns retry budget. The FailoverController migrates every stream to the
// standby pair instead:
//
//	freeze    — retire the sick pair (gateway.FreezeForFailover), gate the
//	            source-side C-FIFO producers (cfifo.BeginRepoint)
//	settle    — wait out the worst-case in-flight residue, clamped to the
//	            outgoing configuration's max τ̂s (one block attempt is the
//	            longest anything can remain in flight)
//	migrate   — export stream state from the dead pair, re-point the C-FIFO
//	            endpoints to the standby's ring nodes, import every stream
//	            onto the paused standby
//	reprogram — one validated ApplySlots transaction sizes (optionally
//	            re-solves) every migrated slot over the configuration bus
//	resume    — the standby starts arbitration; the aborted block replays
//
// The measured cost (trigger → resume) is recorded against the derived
// bound: max τ̂s of the outgoing configuration plus the per-slot bus cost of
// the transition (Eq. 2 + the admission transition model). The controller
// adds no nondeterminism: given the same platform and fault plan, the
// failover lands on the same cycle every run.

import (
	"fmt"

	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// FailoverConfig parameterises a FailoverController.
type FailoverConfig struct {
	// Primary and Standby index MultiSystem.Chains. The standby chain must
	// have been built with ChainSpec.Standby (zero streams) and the same
	// accelerator count as the primary.
	Primary, Standby int
	// Model is the primary's temporal model (Eq. 2/4); its per-stream block
	// sizes are refreshed from the live gateway at trigger time, then it
	// yields the failover bound and, with Resolve, the survivor re-solve.
	Model *core.System
	// PerSlotCost is the configuration-bus cost per reprogrammed slot, the
	// same constant the admission controller charges.
	PerSlotCost sim.Time
	// SettleDelay overrides the freeze settle time (0 = the primary's
	// FlushDelay, else its DrainTimeout). Whatever the source, it is clamped
	// to the model's max τ̂s so the measured cost stays within the bound.
	SettleDelay sim.Time
	// Resolve re-runs Algorithm 1 (warm-started) for the migrated streams
	// before reprogramming, against StandbyChain when the standby's engine
	// slots differ from the primary's. Without it the outgoing block sizes
	// are kept verbatim.
	Resolve      bool
	StandbyChain *core.Chain
	// WarmRounds budgets the warm-started re-solve (0 = default 64).
	WarmRounds int
	// Checkpoint and CheckpointCost mirror the primary's
	// gateway.Recovery.Checkpoint / CheckpointCost. When Checkpoint > 0 the
	// cost bound uses the adjusted Eq. 2 term τ̂s(K)
	// (core.TauHatCheckpointed) instead of the plain τ̂s: checkpoint
	// quiesces stretch each clean block, so the settle clamp and the
	// failover bound must absorb them, while the migrated block's replay
	// residue shrinks from O(ηs) to O(K).
	Checkpoint     int64
	CheckpointCost sim.Time
	// OnComplete observes the finished failover.
	OnComplete func(Record)
}

// Record documents one completed failover.
type Record struct {
	Reason                 string
	TriggeredAt, ResumedAt sim.Time
	// Names and Blocks list the migrated slots and their post-failover ηs.
	Names  []string
	Blocks []int64
	// ReplayWords counts input words of the aborted in-flight block that the
	// standby replays.
	ReplayWords int
	// SettleCycles + BusCycles = MeasuredCycles, checked against BoundCycles
	// = max τ̂s(outgoing) + PerSlotCost per slot.
	SettleCycles   uint64
	BusCycles      uint64
	MeasuredCycles uint64
	BoundCycles    uint64
	// Resolved reports whether a re-solve ran and stuck; ResolveErr carries
	// the reason the outgoing sizes were kept instead.
	Resolved   bool
	ResolveErr string
}

// FailoverController owns the primary→standby migration for one chain pair.
type FailoverController struct {
	ms  *MultiSystem
	cfg FailoverConfig
	pri *Chain
	stb *Chain

	triggered bool
	rec       *Record
}

// NewFailover validates the chain pairing and returns a controller. It does
// not arm anything: call Arm for a doctor-driven trigger, or Trigger
// directly (a scripted or operator-initiated failover).
func NewFailover(ms *MultiSystem, cfg FailoverConfig) (*FailoverController, error) {
	if cfg.Primary == cfg.Standby {
		return nil, fmt.Errorf("failover: primary and standby must be distinct chains")
	}
	if cfg.Primary < 0 || cfg.Primary >= len(ms.Chains) || cfg.Standby < 0 || cfg.Standby >= len(ms.Chains) {
		return nil, fmt.Errorf("failover: chain index out of range")
	}
	pri, stb := ms.Chains[cfg.Primary], ms.Chains[cfg.Standby]
	if len(stb.Strs) != 0 {
		return nil, fmt.Errorf("failover: standby chain %q already has streams", stb.Spec.Name)
	}
	if len(stb.Tiles) != len(pri.Tiles) {
		return nil, fmt.Errorf("failover: standby chain %q has %d tiles, primary %q has %d",
			stb.Spec.Name, len(stb.Tiles), pri.Spec.Name, len(pri.Tiles))
	}
	if !pri.Spec.Recovery.Enabled {
		return nil, fmt.Errorf("failover: primary chain %q needs recovery enabled (replay snapshots)", pri.Spec.Name)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("failover: need the primary's temporal model for the cost bound")
	}
	if cfg.PerSlotCost <= 0 {
		return nil, fmt.Errorf("failover: per-slot bus cost must be positive")
	}
	return &FailoverController{ms: ms, cfg: cfg, pri: pri, stb: stb}, nil
}

// Arm wires a fault doctor onto the primary pair's stall feed; its
// wedged-chain verdict triggers the failover.
func (fc *FailoverController) Arm(dcfg fault.DoctorConfig) (*fault.Doctor, error) {
	d, err := fault.NewDoctor(fc.ms.K, dcfg, func(v fault.Verdict) {
		// The verdict is latched (at most once) and Trigger latches too, so
		// a second error here is impossible; ignore it for the signature.
		_ = fc.Trigger(v.Reason)
	})
	if err != nil {
		return nil, err
	}
	fc.pri.Pair.SetStallObserver(d.NoteStall)
	return d, nil
}

// Triggered reports whether the failover has fired.
func (fc *FailoverController) Triggered() bool { return fc.triggered }

// Record returns the completed failover's record (nil while pending).
func (fc *FailoverController) Record() *Record { return fc.rec }

// Trigger starts the failover immediately (at most once): freeze the
// primary, gate the producers, and schedule the migration after the settle
// delay. Reason is recorded verbatim.
func (fc *FailoverController) Trigger(reason string) error {
	if fc.triggered {
		return fmt.Errorf("failover: already triggered")
	}
	fc.triggered = true
	now := fc.ms.K.Now()

	// Refresh the model's block sizes from the live gateway before freezing:
	// admission-control transitions may have re-sized slots since build.
	snaps := fc.pri.Pair.Snapshot()
	maxTau := fc.refreshModel(snaps)

	if err := fc.pri.Pair.FreezeForFailover(); err != nil {
		return err
	}
	for _, st := range fc.pri.Strs {
		if st.GW.Released {
			// A rebalanced-away stream's tombstone: the real stream (and its
			// FIFOs) belongs to another chain now.
			continue
		}
		st.In.BeginRepoint()
	}
	settle := fc.cfg.SettleDelay
	if settle == 0 {
		settle = fc.pri.Spec.Recovery.FlushDelay
	}
	if settle == 0 {
		settle = fc.pri.Spec.DrainTimeout
	}
	if maxTau > 0 && settle > sim.Time(maxTau) {
		// One block attempt bounds how long anything stays in flight; a
		// longer settle would push the measured cost past the bound for no
		// extra safety.
		settle = sim.Time(maxTau)
	}
	if settle <= 0 {
		return fmt.Errorf("failover: no usable settle delay (set SettleDelay)")
	}
	fc.ms.K.Schedule(settle, func() { fc.migrate(reason, now, settle, maxTau) })
	return nil
}

// refreshModel re-syncs the temporal model's per-stream ηs with the live
// slot table (matched by name) and returns the outgoing configuration's
// max τ̂s over the non-quarantined streams.
func (fc *FailoverController) refreshModel(snaps []gateway.StreamSnapshot) uint64 {
	byName := make(map[string]gateway.StreamSnapshot, len(snaps))
	for _, sn := range snaps {
		byName[sn.Name] = sn
	}
	var maxTau uint64
	for i := range fc.cfg.Model.Streams {
		ms := &fc.cfg.Model.Streams[i]
		sn, ok := byName[ms.Name]
		if !ok {
			continue
		}
		ms.Block = sn.Block
		if sn.Quarantined || sn.Suspended {
			continue
		}
		if tau, err := fc.cfg.Model.TauHatCheckpointed(i, fc.cfg.Checkpoint, uint64(fc.cfg.CheckpointCost)); err == nil && tau > maxTau {
			maxTau = tau
		}
	}
	return maxTau
}

// migrate runs after the settle delay: every in-flight word has landed, so
// the dead chain can be scrubbed and the streams moved.
func (fc *FailoverController) migrate(reason string, triggeredAt, settle sim.Time, maxTau uint64) {
	allExports, err := fc.pri.Pair.ExportStreams()
	if err != nil {
		panic(fmt.Sprintf("failover: export: %v", err))
	}
	// Drop Released tombstones: a rebalanced-away stream's slot exports an
	// empty placeholder (no FIFOs, no state) — the real stream already lives
	// on another chain. Strs and the export table are index-parallel, so one
	// filter keeps them paired.
	var exports []gateway.StreamExport
	var moved []*Stream
	for i, e := range allExports {
		if e.Stream.Released {
			continue
		}
		exports = append(exports, e)
		moved = append(moved, fc.pri.Strs[i])
	}
	replay := 0
	for _, e := range exports {
		replay += len(e.Replay)
	}
	fc.pri.Strs = nil
	decims := make([]int64, len(moved))
	for i, st := range moved {
		d := st.Spec.Decimation
		if d < 1 {
			d = 1
		}
		decims[i] = d
		st.In.RepointConsumer(fc.stb.EntryNode)
		st.Out.RepointProducer(fc.stb.ExitNode)
	}
	err = fc.stb.Pair.RequestPause(func() {
		slots := make([]int, len(exports))
		for i, e := range exports {
			slot, err := fc.stb.Pair.ImportStream(e)
			if err != nil {
				panic(fmt.Sprintf("failover: import %q: %v", e.Stream.Name, err))
			}
			slots[i] = slot
		}
		fc.stb.Strs = append(fc.stb.Strs, moved...)

		rec := &Record{
			Reason:       reason,
			TriggeredAt:  triggeredAt,
			ReplayWords:  replay,
			SettleCycles: uint64(settle),
		}
		blocks := make([]int64, len(exports))
		for i, e := range exports {
			rec.Names = append(rec.Names, e.Stream.Name)
			blocks[i] = e.Stream.Block
		}
		if fc.cfg.Resolve {
			solved, rerr := fc.resolve(exports, decims)
			if rerr == nil {
				// A slot whose aborted block must replay cannot shrink below
				// its resume point plus residue: the standby resumes the new
				// block at ReplayStart (the last committed checkpoint, 0
				// without checkpointing) and seeds it with the replay words,
				// so a smaller ηs would silently drop the tail, and an
				// OutBlock below the committed count would end the block
				// before the consumer's position. Growth is fine — the
				// replay fills in from the resume point and fresh words
				// complete the larger block.
				for i, e := range exports {
					if solved[i] < e.ReplayStart+int64(len(e.Replay)) || solved[i]/decims[i] < e.Committed {
						rerr = fmt.Errorf("re-solved eta for %q (%d) below its resume point %d + replay residue (%d words, %d committed)",
							e.Stream.Name, solved[i], e.ReplayStart, len(e.Replay), e.Committed)
						break
					}
				}
			}
			if rerr != nil {
				rec.ResolveErr = rerr.Error()
			} else {
				blocks = solved
				rec.Resolved = true
			}
		}
		rec.Blocks = blocks

		updates := make([]gateway.SlotUpdate, len(exports))
		for i := range exports {
			updates[i] = gateway.SlotUpdate{
				Stream: slots[i], SetBlock: blocks[i], SetOutBlock: blocks[i] / decims[i],
			}
		}
		rec.BusCycles = uint64(fc.cfg.PerSlotCost) * uint64(len(updates))
		rec.BoundCycles = maxTau + rec.BusCycles
		if err := fc.stb.Pair.ApplySlots(updates, fc.cfg.PerSlotCost, func() {
			fc.stb.Pair.Resume()
			rec.ResumedAt = fc.ms.K.Now()
			rec.MeasuredCycles = uint64(rec.ResumedAt - rec.TriggeredAt)
			fc.pri.Pair.RecordFailoverSpan(rec.TriggeredAt, rec.ResumedAt)
			fc.stb.Pair.RecordFailoverSpan(rec.TriggeredAt, rec.ResumedAt)
			fc.rec = rec
			if fc.cfg.OnComplete != nil {
				fc.cfg.OnComplete(*rec)
			}
		}); err != nil {
			panic(fmt.Sprintf("failover: reprogram standby: %v", err))
		}
	})
	if err != nil {
		panic(fmt.Sprintf("failover: pause standby: %v", err))
	}
}

// resolve re-runs Algorithm 1 warm-started from the outgoing block sizes,
// against the standby's chain parameters when they differ. Granularity is
// each stream's decimation so the exit-gateway OutBlock stays exact.
func (fc *FailoverController) resolve(exports []gateway.StreamExport, decims []int64) ([]int64, error) {
	model := fc.cfg.Model.Clone()
	if fc.cfg.StandbyChain != nil {
		model.Chain = *fc.cfg.StandbyChain
		model.Chain.AccelCosts = append([]uint64(nil), fc.cfg.StandbyChain.AccelCosts...)
	}
	// The model must cover exactly the migrated slots, in slot order.
	byName := make(map[string]int, len(model.Streams))
	for i := range model.Streams {
		byName[model.Streams[i].Name] = i
	}
	start := make([]int64, len(exports))
	streams := make([]core.Stream, len(exports))
	for i, e := range exports {
		mi, ok := byName[e.Stream.Name]
		if !ok {
			return nil, fmt.Errorf("model has no stream %q", e.Stream.Name)
		}
		streams[i] = model.Streams[mi]
		streams[i].Block = e.Stream.Block
		start[i] = e.Stream.Block
	}
	model.Streams = streams
	rounds := fc.cfg.WarmRounds
	if rounds <= 0 {
		rounds = 64
	}
	res, err := model.ComputeBlockSizesWarm(start, decims, rounds)
	if err != nil {
		return nil, err
	}
	return res.Blocks, nil
}
