package mpsoc

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// batchPlatform builds the equivalence workload: two streams sharing one
// chain, value-exact recovery (so the staged exit path — the gateway's
// batched transport — is exercised on every block), full tracing on.
func batchPlatform(t *testing.T, batch bool) *System {
	t.Helper()
	mk := func(name string) StreamSpec {
		return StreamSpec{
			Name:           name,
			Block:          8,
			Decimation:     1,
			Reconfig:       40,
			InCapacity:     32,
			OutCapacity:    32,
			Engines:        []accel.Engine{&accel.Gain{Shift: 1}, &accel.Gain{Shift: 2}},
			TotalInputs:    96,
			CollectOutputs: true,
			BatchIO:        batch,
		}
	}
	cfg := Config{
		Name:              "batch",
		HopLatency:        1,
		EntryCost:         4,
		ExitCost:          1,
		Mode:              gateway.ReconfigFixed,
		RecordOutputTimes: true,
		RecordActivity:    true,
		RecordTurnarounds: true,
		Recovery:          gateway.Recovery{ValueExact: true},
		BatchTransport:    batch,
		Accels: []AccelSpec{
			{Name: "g0", Cost: 2, NICapacity: 2},
			{Name: "g1", Cost: 3, NICapacity: 2},
		},
		Streams: []StreamSpec{mk("a"), mk("b")},
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBatchTransportEquivalence proves the batched block-transport paths —
// gateway burst stage-commit (Config.BatchTransport), C-FIFO burst reads
// with coalesced read-counter updates (StreamSpec.BatchIO) — leave the
// observable model byte-identical to per-sample transport: same outputs,
// same per-word timestamps, same Queue Pushed/Popped counters on every NI,
// same activity trace and block turnarounds. Only the ack message count may
// shrink.
func TestBatchTransportEquivalence(t *testing.T) {
	const horizon = 200_000
	plain := batchPlatform(t, false)
	plain.Run(horizon)
	batched := batchPlatform(t, true)
	batched.Run(horizon)

	// Outputs: same words, collected at the same instants.
	for i := range plain.Strs {
		ps, bs := plain.Strs[i], batched.Strs[i]
		if len(ps.Outputs) != len(bs.Outputs) {
			t.Fatalf("stream %d: outputs %d vs %d", i, len(ps.Outputs), len(bs.Outputs))
		}
		for j := range ps.Outputs {
			if ps.Outputs[j] != bs.Outputs[j] {
				t.Fatalf("stream %d output %d: %d vs %d", i, j, ps.Outputs[j], bs.Outputs[j])
			}
		}
		if ps.FirstOutputAt != bs.FirstOutputAt || ps.LastOutputAt != bs.LastOutputAt {
			t.Fatalf("stream %d: sink window (%d,%d) vs (%d,%d)", i,
				ps.FirstOutputAt, ps.LastOutputAt, bs.FirstOutputAt, bs.LastOutputAt)
		}
		// Per-word exit commit instants.
		pg, bg := plain.Pair.Streams()[i], batched.Pair.Streams()[i]
		if len(pg.OutTimes) != len(bg.OutTimes) {
			t.Fatalf("stream %d: OutTimes %d vs %d", i, len(pg.OutTimes), len(bg.OutTimes))
		}
		for j := range pg.OutTimes {
			if pg.OutTimes[j] != bg.OutTimes[j] {
				t.Fatalf("stream %d OutTimes[%d]: %d vs %d", i, j, pg.OutTimes[j], bg.OutTimes[j])
			}
		}
		// Block turnaround trace.
		if len(pg.Turnarounds) != len(bg.Turnarounds) {
			t.Fatalf("stream %d: turnarounds %d vs %d", i, len(pg.Turnarounds), len(bg.Turnarounds))
		}
		for j := range pg.Turnarounds {
			if pg.Turnarounds[j] != bg.Turnarounds[j] {
				t.Fatalf("stream %d turnaround %d: %+v vs %+v", i, j, pg.Turnarounds[j], bg.Turnarounds[j])
			}
		}
		// C-FIFO buffer counters, both directions.
		pp, pq, pm := ps.In.BufferStats()
		bp, bq, bm := bs.In.BufferStats()
		if pp != bp || pq != bq || pm != bm {
			t.Fatalf("stream %d in-FIFO stats: (%d,%d,%d) vs (%d,%d,%d)", i, pp, pq, pm, bp, bq, bm)
		}
		pp, pq, pm = ps.Out.BufferStats()
		bp, bq, bm = bs.Out.BufferStats()
		if pp != bp || pq != bq || pm != bm {
			t.Fatalf("stream %d out-FIFO stats: (%d,%d,%d) vs (%d,%d,%d)", i, pp, pq, pm, bp, bq, bm)
		}
		if bs.Out.AckMessages > ps.Out.AckMessages {
			t.Fatalf("stream %d: batched run sent MORE acks (%d > %d)", i,
				bs.Out.AckMessages, ps.Out.AckMessages)
		}
	}

	// Tile NI queues: every word crossed at the same per-word granularity.
	for i := range plain.Tiles {
		pq, bq := plain.Tiles[i].In(), batched.Tiles[i].In()
		if pq.Pushed != bq.Pushed || pq.Popped != bq.Popped || pq.MaxOccupancy != bq.MaxOccupancy {
			t.Fatalf("tile %d NI: (%d,%d,%d) vs (%d,%d,%d)", i,
				pq.Pushed, pq.Popped, pq.MaxOccupancy, bq.Pushed, bq.Popped, bq.MaxOccupancy)
		}
	}

	// Activity trace (reconfig/stream/drain spans) byte-identical.
	pa, ba := plain.Pair.Activities, batched.Pair.Activities
	if len(pa) != len(ba) {
		t.Fatalf("activity trace length %d vs %d", len(pa), len(ba))
	}
	for i := range pa {
		if pa[i] != ba[i] {
			t.Fatalf("activity %d: %+v vs %+v", i, pa[i], ba[i])
		}
	}

	// Aggregate report equality.
	pr, br := plain.Report(), batched.Report()
	if pr.Cycles != br.Cycles || pr.ReconfigCycles != br.ReconfigCycles || pr.StreamingCycles != br.StreamingCycles {
		t.Fatalf("report cycles: %+v vs %+v", pr, br)
	}
	for i := range pr.PerStream {
		if pr.PerStream[i] != br.PerStream[i] {
			t.Fatalf("stream report %d: %+v vs %+v", i, pr.PerStream[i], br.PerStream[i])
		}
	}

	// The batching must actually batch: with per-word out-FIFO acks the plain
	// run sends one ack message per output word; the batched run must send
	// strictly fewer (whole drain bursts collapse to one update).
	var plainAcks, batchAcks uint64
	for i := range plain.Strs {
		plainAcks += plain.Strs[i].Out.AckMessages
		batchAcks += batched.Strs[i].Out.AckMessages
	}
	if batchAcks >= plainAcks {
		t.Fatalf("acks not batched: batched=%d plain=%d", batchAcks, plainAcks)
	}
}

// TestQueueBurstCountersMatchPerWord pins the sim.Queue burst ops to the
// per-word semantics at the counter level.
func TestQueueBurstCountersMatchPerWord(t *testing.T) {
	a := sim.NewQueue("a", 8)
	b := sim.NewQueue("b", 8)
	ws := []sim.Word{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := 0
	for _, w := range ws {
		if !a.TryPush(w) {
			break
		}
		n++
	}
	if got := b.PushBurst(ws); got != n {
		t.Fatalf("PushBurst = %d, want %d", got, n)
	}
	if a.Pushed != b.Pushed || a.Len() != b.Len() || a.MaxOccupancy != b.MaxOccupancy {
		t.Fatalf("push counters diverge: %d/%d vs %d/%d", a.Pushed, a.Len(), b.Pushed, b.Len())
	}
	var dst [16]sim.Word
	m := b.PopBurst(dst[:])
	if m != n {
		t.Fatalf("PopBurst = %d, want %d", m, n)
	}
	for i := 0; i < m; i++ {
		v, ok := a.TryPop()
		if !ok || v != dst[i] {
			t.Fatalf("pop %d: %d vs %d", i, v, dst[i])
		}
	}
	if a.Popped != b.Popped {
		t.Fatalf("pop counters diverge: %d vs %d", a.Popped, b.Popped)
	}
}
