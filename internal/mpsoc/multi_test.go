package mpsoc

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

func twoChainConfig() MultiConfig {
	mkStream := func(name string, block int64, total uint64) StreamSpec {
		return StreamSpec{
			Name: name, Block: block, Decimation: 1, Reconfig: 50,
			InCapacity: int(4 * block), OutCapacity: int(4 * block),
			Engines:        []accel.Engine{&accel.Gain{Shift: 1}},
			TotalInputs:    total,
			CollectOutputs: true,
		}
	}
	return MultiConfig{
		Name:       "fig1",
		HopLatency: 1,
		Chains: []ChainSpec{
			{
				Name: "g0g1", EntryCost: 3, ExitCost: 1, Mode: gateway.ReconfigFixed,
				Accels:  []AccelSpec{{Name: "acc0", Cost: 1, NICapacity: 2}},
				Streams: []StreamSpec{mkStream("a0", 8, 128), mkStream("a1", 8, 128)},
			},
			{
				Name: "g2g3", EntryCost: 5, ExitCost: 1, Mode: gateway.ReconfigFixed,
				Accels: []AccelSpec{
					{Name: "acc1", Cost: 2, NICapacity: 2},
					{Name: "acc2", Cost: 1, NICapacity: 2},
				},
				Streams: []StreamSpec{func() StreamSpec {
					s := mkStream("b0", 16, 256)
					// Two-tile chain: gain on the first, passthrough after.
					s.Engines = []accel.Engine{&accel.Gain{Shift: 1}, accel.Passthrough{}}
					return s
				}()},
			},
		},
	}
}

func TestBuildMultiValidation(t *testing.T) {
	if _, err := BuildMulti(MultiConfig{}); err == nil {
		t.Error("no chains accepted")
	}
	cfg := twoChainConfig()
	cfg.Chains[0].Accels = nil
	if _, err := BuildMulti(cfg); err == nil {
		t.Error("chain without accelerators accepted")
	}
	cfg = twoChainConfig()
	cfg.Chains[1].Streams = nil
	if _, err := BuildMulti(cfg); err == nil {
		t.Error("chain without streams accepted")
	}
}

func TestTwoChainsOnOneRing(t *testing.T) {
	// The Fig. 1 architecture: two independent gateway pairs on one dual
	// ring, running concurrently.
	ms, err := BuildMulti(twoChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms.Run(2_000_000)
	reps := ms.Report()
	if len(reps) != 2 {
		t.Fatalf("reports = %d", len(reps))
	}
	if reps[0].PerStream[0].SamplesOut != 128 || reps[0].PerStream[1].SamplesOut != 128 {
		t.Errorf("chain 0 outputs: %+v", reps[0].PerStream)
	}
	if reps[1].PerStream[0].SamplesOut != 256 {
		t.Errorf("chain 1 outputs: %+v", reps[1].PerStream)
	}
	// Functional integrity through separate chains.
	for _, ch := range ms.Chains {
		for _, st := range ch.Strs {
			for n, w := range st.Outputs {
				oi, _ := sim.UnpackIQ(w)
				ii, _ := sim.UnpackIQ(sim.Word(uint64(n)))
				if oi != ii<<1 {
					t.Fatalf("chain %s stream %s output %d corrupted", ch.Spec.Name, st.GW.Name, n)
				}
			}
		}
	}
}

func TestChainsAreTemporallyIndependent(t *testing.T) {
	// Chain 1's results must be identical whether chain 0 exists or not
	// (separate gateways, separate accelerators; the ring is dimensioned
	// for both). This is the paper's multi-application deployment story.
	solo := MultiConfig{
		Name:       "solo",
		HopLatency: 1,
		Chains:     []ChainSpec{twoChainConfig().Chains[1]},
	}
	msSolo, err := BuildMulti(solo)
	if err != nil {
		t.Fatal(err)
	}
	msSolo.Run(2_000_000)
	soloRep := msSolo.Report()[0]

	msBoth, err := BuildMulti(twoChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	msBoth.Run(2_000_000)
	bothRep := msBoth.Report()[1]

	if soloRep.PerStream[0].SamplesOut != bothRep.PerStream[0].SamplesOut {
		t.Errorf("sample counts differ: solo %d vs both %d",
			soloRep.PerStream[0].SamplesOut, bothRep.PerStream[0].SamplesOut)
	}
	if soloRep.PerStream[0].Blocks != bothRep.PerStream[0].Blocks {
		t.Errorf("block counts differ: solo %d vs both %d",
			soloRep.PerStream[0].Blocks, bothRep.PerStream[0].Blocks)
	}
	// Turnarounds may differ slightly through ring hop distances (node
	// indices shift), but must stay in the same ballpark.
	s, b := soloRep.PerStream[0].MaxTurnaround, bothRep.PerStream[0].MaxTurnaround
	if b > 2*s+100 {
		t.Errorf("turnaround degraded from %d to %d with a second chain", s, b)
	}
}
