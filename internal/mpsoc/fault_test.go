package mpsoc

import (
	"math/big"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/conformance"
	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
)

// faultPlatform is the shared scenario for the recovery tests: three
// streams over one accelerator (ρA = 1), ε = 15, δ = 1, Rs = 50, block
// η = 16. Eq. 2: τ̂ = Rs + (η+2)·c0 = 50 + 18·15 = 320 cycles per stream;
// Eq. 4 over the full set: γ̂ = 3·τ̂ = 960. At one sample per 75 cycles a
// stream fills a block every 1200 cycles > γ̂, so the healthy system meets
// every throughput constraint with slack.
func faultPlatform(plan *fault.Plan, rec gateway.Recovery) Config {
	stream := func(name string) StreamSpec {
		return StreamSpec{
			Name: name, Block: 16, Decimation: 1, Reconfig: 50,
			InCapacity: 128, OutCapacity: 64,
			SourcePeriod: 75,
			Engines:      []accel.Engine{&accel.Gain{}},
		}
	}
	return Config{
		Name:       "faulty",
		EntryCost:  15,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		HopLatency: 1,
		Accels:     []AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
		Streams: []StreamSpec{
			stream("s0"), stream("s1"), stream("s2"),
		},
		DrainTimeout:      600,
		Recovery:          rec,
		Faults:            plan,
		RecordTurnarounds: true,
	}
}

// TestQuarantineRestoresBounds is the tentpole acceptance scenario: stream
// s0's engine sticks permanently mid-block; after RetryLimit retries the
// gateway quarantines s0, and the surviving streams re-converge to their
// Eq. 2 / Eq. 4 bounds computed over the two-stream survivor set.
func TestQuarantineRestoresBounds(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		// Sticks at absolute sample 24 = midway through s0's second block.
		{Kind: fault.StickEngine, Stream: 0, Site: 0, Sample: 24},
	}}
	sys, err := Build(faultPlatform(plan, gateway.Recovery{Enabled: true, RetryLimit: 2}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200_000)
	rep := sys.Report()

	bad := rep.PerStream[0]
	if !bad.Quarantined {
		t.Fatal("stuck stream not quarantined")
	}
	// RetryLimit 2: stall -> retry 1 -> stall -> retry 2 -> stall -> out.
	if bad.Stalls != 3 || bad.Retries != 2 {
		t.Fatalf("s0 stalls=%d retries=%d, want 3/2", bad.Stalls, bad.Retries)
	}
	if bad.Blocks != 1 {
		t.Errorf("s0 completed %d blocks, want 1 (the block before the stick)", bad.Blocks)
	}

	quarantinedAt := sys.Strs[0].GW.QuarantinedAt
	for i := 1; i <= 2; i++ {
		sr := rep.PerStream[i]
		if sr.Stalls != 0 || sr.Quarantined {
			t.Fatalf("%s blamed for the fault: stalls=%d quarantined=%v", sr.Name, sr.Stalls, sr.Quarantined)
		}
		if sr.Overflows != 0 {
			t.Errorf("%s overflowed %d source samples — throughput constraint violated", sr.Name, sr.Overflows)
		}
		if sr.Blocks < 100 {
			t.Errorf("%s completed only %d blocks over the horizon", sr.Name, sr.Blocks)
		}
	}
	// Bound conformance over the survivor set: Eq. 2 with Rs=50, η=16,
	// c0=max(ε,ρA,δ)=15 gives τ̂=320, Eq. 4 over the TWO survivors γ̂=640.
	// Blocks queued during the disturbance carry the recovery backlog in
	// their turnaround; the bounds apply once the survivors have
	// re-converged, so the check starts a settle margin past the quarantine
	// (the ~47% spare capacity drains the backlog well within it).
	survivors := &core.System{
		Chain: core.Chain{
			Name: "faulty", AccelCosts: []uint64{1},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, name := range []string{"s1", "s2"} {
		survivors.Streams = append(survivors.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, 75), Reconfig: 50, Block: 16,
		})
	}
	bounds, err := conformance.FromModel(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0].TauHat != 320 || bounds[0].GammaHat != 640 {
		t.Fatalf("survivor bounds τ̂=%d γ̂=%d, want 320/640", bounds[0].TauHat, bounds[0].GammaHat)
	}
	res := conformance.FromStreams(bounds,
		[]*gateway.Stream{sys.Strs[1].GW, sys.Strs[2].GW},
		conformance.Options{After: quarantinedAt + 20_000, MinBlocks: 50})
	if err := res.Err(); err != nil {
		t.Error(err)
	}
}

// TestRecoveryDisabledDeadlocks is the counterfactual: the same stuck
// engine with recovery off wedges the whole chain — the event budget runs
// out with the healthy streams frozen and their sources overflowing.
func TestRecoveryDisabledDeadlocks(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.StickEngine, Stream: 0, Site: 0, Sample: 24},
	}}
	sys, err := Build(faultPlatform(plan, gateway.Recovery{})) // detect-only
	if err != nil {
		t.Fatal(err)
	}
	sys.Pair.Start()
	const budget = 500_000
	steps := 0
	for steps < budget && sys.K.Step() {
		steps++
	}
	if steps < budget {
		t.Fatalf("event queue drained after %d steps — expected a live-locked platform", steps)
	}
	rep := sys.Report()
	if rep.PerStream[0].Stalls != 1 {
		t.Errorf("s0 stalls = %d, want 1 (detect-only fires once)", rep.PerStream[0].Stalls)
	}
	for i := 1; i <= 2; i++ {
		sr := rep.PerStream[i]
		// Head-of-line deadlock: the healthy streams completed at most the
		// few blocks served before the wedge, then froze while their
		// periodic sources overran the input FIFOs.
		if sr.Blocks > 5 {
			t.Errorf("%s completed %d blocks — chain not deadlocked", sr.Name, sr.Blocks)
		}
		if sr.Overflows == 0 {
			t.Errorf("%s shows no overflows despite the frozen chain", sr.Name)
		}
	}
}

// TestTransientLinkWedgeRecovers arms a finite entry-link wedge through the
// fault plan: the block in flight stalls, recovery retries it after the
// wedge lifts, and every stream finishes with nothing quarantined.
func TestTransientLinkWedgeRecovers(t *testing.T) {
	// The wedge must outlast two watchdog windows (2×600): detection needs
	// one FULL progress-free window between consecutive checks, so shorter
	// freezes can be ridden out without ever firing.
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.WedgeLink, Site: 0, At: 500, Duration: 1500},
	}}
	cfg := faultPlatform(plan, gateway.Recovery{Enabled: true, RetryLimit: 3})
	for i := range cfg.Streams {
		cfg.Streams[i].SourcePeriod = 20
		cfg.Streams[i].TotalInputs = 64 // 4 blocks each, finite run
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Pair.Start()
	sys.K.RunAll()
	rep := sys.Report()
	totalRetries := uint64(0)
	for _, sr := range rep.PerStream {
		totalRetries += sr.Retries
		if sr.Quarantined {
			t.Errorf("%s quarantined by a transient wedge", sr.Name)
		}
		if sr.Blocks != 4 {
			t.Errorf("%s completed %d blocks, want 4", sr.Name, sr.Blocks)
		}
		if sr.SamplesOut != 64 {
			t.Errorf("%s delivered %d samples, want 64 (no loss, no duplicates)", sr.Name, sr.SamplesOut)
		}
	}
	if totalRetries == 0 {
		t.Error("wedge caused no retries — fault never landed")
	}
}
