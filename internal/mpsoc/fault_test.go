package mpsoc

import (
	"math/big"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/conformance"
	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
)

// faultPlatform is the shared scenario for the recovery tests: three
// streams over one accelerator (ρA = 1), ε = 15, δ = 1, Rs = 50, block
// η = 16. Eq. 2: τ̂ = Rs + (η+2)·c0 = 50 + 18·15 = 320 cycles per stream;
// Eq. 4 over the full set: γ̂ = 3·τ̂ = 960. At one sample per 75 cycles a
// stream fills a block every 1200 cycles > γ̂, so the healthy system meets
// every throughput constraint with slack.
func faultPlatform(plan *fault.Plan, rec gateway.Recovery) Config {
	stream := func(name string) StreamSpec {
		return StreamSpec{
			Name: name, Block: 16, Decimation: 1, Reconfig: 50,
			InCapacity: 128, OutCapacity: 64,
			SourcePeriod: 75,
			Engines:      []accel.Engine{&accel.Gain{}},
		}
	}
	return Config{
		Name:       "faulty",
		EntryCost:  15,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		HopLatency: 1,
		Accels:     []AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
		Streams: []StreamSpec{
			stream("s0"), stream("s1"), stream("s2"),
		},
		DrainTimeout:      600,
		Recovery:          rec,
		Faults:            plan,
		RecordTurnarounds: true,
	}
}

// TestQuarantineRestoresBounds is the tentpole acceptance scenario: stream
// s0's engine sticks permanently mid-block; after RetryLimit retries the
// gateway quarantines s0, and the surviving streams re-converge to their
// Eq. 2 / Eq. 4 bounds computed over the two-stream survivor set.
func TestQuarantineRestoresBounds(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		// Sticks at absolute sample 24 = midway through s0's second block.
		{Kind: fault.StickEngine, Stream: 0, Site: 0, Sample: 24},
	}}
	sys, err := Build(faultPlatform(plan, gateway.Recovery{Enabled: true, RetryLimit: 2}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200_000)
	rep := sys.Report()

	bad := rep.PerStream[0]
	if !bad.Quarantined {
		t.Fatal("stuck stream not quarantined")
	}
	// RetryLimit 2: stall -> retry 1 -> stall -> retry 2 -> stall -> out.
	if bad.Stalls != 3 || bad.Retries != 2 {
		t.Fatalf("s0 stalls=%d retries=%d, want 3/2", bad.Stalls, bad.Retries)
	}
	if bad.Blocks != 1 {
		t.Errorf("s0 completed %d blocks, want 1 (the block before the stick)", bad.Blocks)
	}

	quarantinedAt := sys.Strs[0].GW.QuarantinedAt
	for i := 1; i <= 2; i++ {
		sr := rep.PerStream[i]
		if sr.Stalls != 0 || sr.Quarantined {
			t.Fatalf("%s blamed for the fault: stalls=%d quarantined=%v", sr.Name, sr.Stalls, sr.Quarantined)
		}
		if sr.Overflows != 0 {
			t.Errorf("%s overflowed %d source samples — throughput constraint violated", sr.Name, sr.Overflows)
		}
		if sr.Blocks < 100 {
			t.Errorf("%s completed only %d blocks over the horizon", sr.Name, sr.Blocks)
		}
	}
	// Bound conformance over the survivor set: Eq. 2 with Rs=50, η=16,
	// c0=max(ε,ρA,δ)=15 gives τ̂=320, Eq. 4 over the TWO survivors γ̂=640.
	// Blocks queued during the disturbance carry the recovery backlog in
	// their turnaround; the bounds apply once the survivors have
	// re-converged, so the check starts a settle margin past the quarantine
	// (the ~47% spare capacity drains the backlog well within it).
	survivors := &core.System{
		Chain: core.Chain{
			Name: "faulty", AccelCosts: []uint64{1},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, name := range []string{"s1", "s2"} {
		survivors.Streams = append(survivors.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, 75), Reconfig: 50, Block: 16,
		})
	}
	bounds, err := conformance.FromModel(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0].TauHat != 320 || bounds[0].GammaHat != 640 {
		t.Fatalf("survivor bounds τ̂=%d γ̂=%d, want 320/640", bounds[0].TauHat, bounds[0].GammaHat)
	}
	res := conformance.FromStreams(bounds,
		[]*gateway.Stream{sys.Strs[1].GW, sys.Strs[2].GW},
		conformance.Options{After: quarantinedAt + 20_000, MinBlocks: 50})
	if err := res.Err(); err != nil {
		t.Error(err)
	}
}

// TestCheckpointedTransientConformsToAdjustedBounds is the replay-cost
// acceptance check: a fault-plan transient (a dropped sample in a late
// sub-block) on a checkpointing chain resumes from the last checkpoint, so
// the measured retry work is at most K words — and the whole trace,
// retried block included, conforms to the adjusted Eq. 2 bounds via the
// conformance harness's ReplayBound/RetrySlack checks. The fault plan is
// checkpoint-aware for free: fault sample indices are engine-lifetime
// positions excluded from SaveState, so a checkpoint snapshot can never
// re-arm a transient that already fired — the resume replays PAST it.
func TestCheckpointedTransientConformsToAdjustedBounds(t *testing.T) {
	const (
		K      = 4
		ckCost = 5
	)
	plan := &fault.Plan{Faults: []fault.Fault{
		// Drops s0's lifetime sample 29 — block 2 (samples 16..31), final
		// sub-block (28..31), after three checkpoints committed.
		{Kind: fault.DropSample, Stream: 0, Site: 0, Sample: 29},
	}}
	rec := gateway.Recovery{
		Enabled: true, RetryLimit: 2,
		Checkpoint: K, CheckpointCost: ckCost, ValueExact: true,
	}
	sys, err := Build(faultPlatform(plan, rec))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200_000)
	rep := sys.Report()

	s0 := rep.PerStream[0]
	if s0.Retries != 1 || s0.Quarantined {
		t.Fatalf("s0 retries=%d quarantined=%v, want one clean retry (transient must not refire on resume)",
			s0.Retries, s0.Quarantined)
	}
	for i, sr := range rep.PerStream {
		if sr.Overflows != 0 {
			t.Errorf("%s overflowed %d samples", sr.Name, sr.Overflows)
		}
		if sr.Blocks < 100 {
			t.Errorf("stream %d completed only %d blocks over the horizon", i, sr.Blocks)
		}
	}
	// The retried block replayed exactly one sub-block.
	var retried *gateway.BlockRecord
	for bi := range sys.Strs[0].GW.Turnarounds {
		if r := &sys.Strs[0].GW.Turnarounds[bi]; r.Retries > 0 {
			if retried != nil {
				t.Fatal("more than one retried block for a single transient")
			}
			retried = r
		}
	}
	if retried == nil {
		t.Fatal("transient caused no retried block")
	}
	if retried.Replayed != K {
		t.Fatalf("retried block replayed %d words, want K=%d (one sub-block, not η=16)", retried.Replayed, K)
	}

	// Full-trace conformance against the adjusted Eq. 2 bounds:
	// τ̂(K=4) = 50 + (16 + 2·4)·15 + 3·5 = 425, γ̂ = 3·425 = 1275. The
	// retried block gets one retry's slack — worst-case detection (up to
	// TWO DrainTimeout windows: progress can stop right after a watchdog
	// check, and the stall needs one full progress-free window after the
	// next) + flush settle (600) + the resume bound Rs + (K+2)·c0 = 140 —
	// instead of a blanket exemption, and every block's replay work is
	// capped at K per retry.
	model := &core.System{
		Chain: core.Chain{
			Name: "faulty", AccelCosts: []uint64{1},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, name := range []string{"s0", "s1", "s2"} {
		model.Streams = append(model.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, 75), Reconfig: 50, Block: 16,
		})
	}
	bounds, err := conformance.FromModelCheckpointed(model, K, ckCost)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0].TauHat != 425 || bounds[0].GammaHat != 1275 {
		t.Fatalf("adjusted bounds τ̂=%d γ̂=%d, want 425/1275", bounds[0].TauHat, bounds[0].GammaHat)
	}
	resume, err := model.ResumeBound(0, K)
	if err != nil {
		t.Fatal(err)
	}
	if resume != 140 {
		t.Fatalf("resume bound = %d, want 140 = 50 + (4+2)·15", resume)
	}
	res := conformance.FromStreams(bounds,
		[]*gateway.Stream{sys.Strs[0].GW, sys.Strs[1].GW, sys.Strs[2].GW},
		conformance.Options{
			MinBlocks:   100,
			ReplayBound: K,
			RetrySlack:  2*600 + 600 + resume,
			// The retried block's γ̂ carries the same recovery backlog its
			// τ̂ does; successor blocks queued behind it are covered by the
			// FilterQueued-style transition argument, so scope γ̂/throughput
			// checks from a settle margin after the retry instead.
			SkipGamma: true,
		})
	if err := res.Err(); err != nil {
		t.Error(err)
	}
	if res.Checked < 300 {
		t.Errorf("conformance checked %d blocks, want the full three-stream trace", res.Checked)
	}
}

// TestRecoveryDisabledDeadlocks is the counterfactual: the same stuck
// engine with recovery off wedges the whole chain — the event budget runs
// out with the healthy streams frozen and their sources overflowing.
func TestRecoveryDisabledDeadlocks(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.StickEngine, Stream: 0, Site: 0, Sample: 24},
	}}
	sys, err := Build(faultPlatform(plan, gateway.Recovery{})) // detect-only
	if err != nil {
		t.Fatal(err)
	}
	sys.Pair.Start()
	const budget = 500_000
	steps := 0
	for steps < budget && sys.K.Step() {
		steps++
	}
	if steps < budget {
		t.Fatalf("event queue drained after %d steps — expected a live-locked platform", steps)
	}
	rep := sys.Report()
	if rep.PerStream[0].Stalls != 1 {
		t.Errorf("s0 stalls = %d, want 1 (detect-only fires once)", rep.PerStream[0].Stalls)
	}
	for i := 1; i <= 2; i++ {
		sr := rep.PerStream[i]
		// Head-of-line deadlock: the healthy streams completed at most the
		// few blocks served before the wedge, then froze while their
		// periodic sources overran the input FIFOs.
		if sr.Blocks > 5 {
			t.Errorf("%s completed %d blocks — chain not deadlocked", sr.Name, sr.Blocks)
		}
		if sr.Overflows == 0 {
			t.Errorf("%s shows no overflows despite the frozen chain", sr.Name)
		}
	}
}

// TestTransientLinkWedgeRecovers arms a finite entry-link wedge through the
// fault plan: the block in flight stalls, recovery retries it after the
// wedge lifts, and every stream finishes with nothing quarantined.
func TestTransientLinkWedgeRecovers(t *testing.T) {
	// The wedge must outlast two watchdog windows (2×600): detection needs
	// one FULL progress-free window between consecutive checks, so shorter
	// freezes can be ridden out without ever firing.
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.WedgeLink, Site: 0, At: 500, Duration: 1500},
	}}
	cfg := faultPlatform(plan, gateway.Recovery{Enabled: true, RetryLimit: 3})
	for i := range cfg.Streams {
		cfg.Streams[i].SourcePeriod = 20
		cfg.Streams[i].TotalInputs = 64 // 4 blocks each, finite run
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Pair.Start()
	sys.K.RunAll()
	rep := sys.Report()
	totalRetries := uint64(0)
	for _, sr := range rep.PerStream {
		totalRetries += sr.Retries
		if sr.Quarantined {
			t.Errorf("%s quarantined by a transient wedge", sr.Name)
		}
		if sr.Blocks != 4 {
			t.Errorf("%s completed %d blocks, want 4", sr.Name, sr.Blocks)
		}
		if sr.SamplesOut != 64 {
			t.Errorf("%s delivered %d samples, want 64 (no loss, no duplicates)", sr.Name, sr.SamplesOut)
		}
	}
	if totalRetries == 0 {
		t.Error("wedge caused no retries — fault never landed")
	}
}
